"""A uniform-grid spatial index — the practical-GIS comparator.

The calibration notes for this reproduction observe that in practice
"spatial indexes cover practical needs"; the simplest such index is a
uniform grid: the bounding box is cut into ``cells x cells`` buckets, each
holding (references to) every segment whose bounding box meets the cell.
A VS query visits the column of cells its x hits, restricted to its
y-window, and filters exactly.

Costs are data-dependent: great on uniformly spread short segments, bad on
skew and on long segments (which are replicated into many cells).
Benchmarks E10/E11 place it against the paper's structures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..geometry import Segment, VerticalQuery, vs_intersects
from ..geometry.kernels import subset_query_hits
from ..iosim import Pager, StorageError
from ..storage.chain import PageChain


class GridIndex:
    """Uniform bucket grid with per-cell page chains."""

    def __init__(self, pager: Pager, cells: int = 32):
        if cells < 1:
            raise ValueError("cells must be >= 1")
        self.pager = pager
        self.cells = cells
        self.bounds: Optional[Tuple] = None  # (xmin, ymin, xmax, ymax)
        self._chains: Dict[Tuple[int, int], PageChain] = {}
        self.size = 0
        self.replication = 0  # stored (cell, segment) pairs

    @classmethod
    def build(
        cls, pager: Pager, segments: Iterable[Segment], cells: Optional[int] = None
    ) -> "GridIndex":
        segments = list(segments)
        if cells is None:
            cells = max(1, math.isqrt(max(1, len(segments))) // 2)
        index = cls(pager, cells=cells)
        if not segments:
            return index
        index.bounds = (
            min(s.xmin for s in segments),
            min(s.ymin for s in segments),
            max(s.xmax for s in segments),
            max(s.ymax for s in segments),
        )
        buckets: Dict[Tuple[int, int], List[Segment]] = {}
        for s in segments:
            for cell in index._cells_of(s.xmin, s.ymin, s.xmax, s.ymax):
                buckets.setdefault(cell, []).append(s)
        for cell, bucket in buckets.items():
            index._chains[cell] = PageChain.create(pager, bucket)
            index.replication += len(bucket)
        index.size = len(segments)
        return index

    # ------------------------------------------------------------------
    # geometry -> cells
    # ------------------------------------------------------------------
    def _span(self) -> Tuple:
        xmin, ymin, xmax, ymax = self.bounds
        return (max(1, xmax - xmin), max(1, ymax - ymin))

    def _cell_index(self, value, lo, extent) -> int:
        idx = int((value - lo) * self.cells / extent)
        return min(max(idx, 0), self.cells - 1)

    def _cells_of(self, xlo, ylo, xhi, yhi):
        xmin, ymin, _xmax, _ymax = self.bounds
        w, h = self._span()
        cx0 = self._cell_index(xlo, xmin, w)
        cx1 = self._cell_index(xhi, xmin, w)
        cy0 = self._cell_index(ylo, ymin, h)
        cy1 = self._cell_index(yhi, ymin, h)
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                yield (cx, cy)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery) -> List[Segment]:
        if self.bounds is None:
            return []
        xmin, ymin, xmax, ymax = self.bounds
        ylo = q.ylo if q.ylo is not None else ymin
        yhi = q.yhi if q.yhi is not None else ymax
        if q.x < xmin or q.x > xmax:
            return []
        out: Dict = {}
        with self.pager.operation():
            with self.pager.device.tagged("cells"):
                for cell in self._cells_of(q.x, min(ylo, ymax), q.x, max(yhi, ymin)):
                    chain = self._chains.get(cell)
                    if chain is None:
                        continue
                    for page in chain.iter_pages():
                        items = page.items
                        # Rows already output are never compared (the
                        # label dedup short-circuits before the geometry
                        # test); the kernel runs on the surviving subset.
                        idx = [i for i, s in enumerate(items)
                               if s.label not in out]
                        hits = None
                        if len({items[i].label for i in idx}) == len(idx):
                            hits = subset_query_hits(page, q, idx, items)
                        if hits is not None:
                            for s in hits:
                                out[s.label] = s
                        else:
                            # Scalar path (also taken when the subset has
                            # duplicate labels, where a hit must shadow
                            # later rows with the same label mid-page).
                            for i in idx:
                                s = items[i]
                                if s.label not in out and vs_intersects(s, q):
                                    out[s.label] = s
        return list(out.values())

    def query_batch(self, queries: Iterable[VerticalQuery]) -> List[List[Segment]]:
        """Sequential loop fallback (uniform batch API, no shared descent)."""
        return [self.query(q) for q in queries]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, segment: Segment) -> None:
        """Insert; a segment outside the current bounds triggers a rebuild
        (grids are rigid — that is part of why the paper's structures win
        on dynamic data)."""
        with self.pager.operation():
            if self.bounds is None or not self._inside_bounds(segment):
                everything = self.all_segments() + [segment]
                self.destroy()
                rebuilt = GridIndex.build(self.pager, everything, cells=self.cells)
                self.bounds = rebuilt.bounds
                self._chains = rebuilt._chains
                self.size = rebuilt.size
                self.replication = rebuilt.replication
                return
            for cell in self._cells_of(segment.xmin, segment.ymin,
                                       segment.xmax, segment.ymax):
                chain = self._chains.get(cell)
                if chain is None:
                    chain = PageChain.create(self.pager, [])
                    self._chains[cell] = chain
                chain.append(segment)
                self.replication += 1
            self.size += 1

    def delete(self, segment: Segment) -> bool:
        raise NotImplementedError("the grid baseline is insert-only here")

    def _inside_bounds(self, s: Segment) -> bool:
        xmin, ymin, xmax, ymax = self.bounds
        return xmin <= s.xmin and s.xmax <= xmax and ymin <= s.ymin and s.ymax <= ymax

    def all_segments(self) -> List[Segment]:
        seen: Dict = {}
        for chain in self._chains.values():
            for s in chain:
                seen[s.label] = s
        return list(seen.values())

    def destroy(self) -> None:
        for chain in self._chains.values():
            chain.destroy()
        self._chains = {}
        self.bounds = None
        self.size = 0
        self.replication = 0

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # verification & recovery support
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Bounds cover every segment; replication and size are consistent."""
        if self.bounds is None:
            assert self.size == 0 and not self._chains
            return
        stored = 0
        seen: Dict = {}
        for cell, chain in self._chains.items():
            assert 0 <= cell[0] < self.cells and 0 <= cell[1] < self.cells
            for s in chain:
                assert self._inside_bounds(s), f"{s!r} escapes grid bounds"
                assert cell in set(
                    self._cells_of(s.xmin, s.ymin, s.xmax, s.ymax)
                ), f"{s!r} stored in wrong cell {cell}"
                seen[s.label] = s
                stored += 1
        assert stored == self.replication, (
            f"replication stale: {stored} != {self.replication}"
        )
        assert len(seen) == self.size, f"size mismatch: {len(seen)} != {self.size}"

    def verify(self) -> List[str]:
        try:
            self.check_invariants()
        except AssertionError as exc:
            return [f"grid: invariant violated: {exc}"]
        except StorageError as exc:
            return [f"grid: {type(exc).__name__}: {exc}"]
        return []

    def snapshot_state(self) -> tuple:
        return (self.bounds, dict(self._chains), self.size, self.replication)

    def restore_state(self, state: tuple) -> None:
        self.bounds, chains, self.size, self.replication = state
        self._chains = dict(chains)

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        return {
            "cells": self.cells,
            "bounds": self.bounds,
            "size": self.size,
            "replication": self.replication,
            "chains": {cell: chain.head_pid for cell, chain in self._chains.items()},
        }

    @classmethod
    def attach(cls, pager: Pager, meta: dict) -> "GridIndex":
        index = cls(pager, cells=meta["cells"])
        index.bounds = meta["bounds"]
        index.size = meta["size"]
        index.replication = meta["replication"]
        index._chains = {
            cell: PageChain(pager, head_pid)
            for cell, head_pid in meta["chains"].items()
        }
        return index

    @property
    def replication_factor(self) -> float:
        """Average number of cells each segment is stored in."""
        return self.replication / self.size if self.size else 0.0
