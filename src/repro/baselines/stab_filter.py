"""The stab-and-filter baseline (Figure 1's motivation).

Prior to this paper, the indexed way to answer a vertical *segment* query
was a stabbing structure over x-projections: stab the vertical line at
``x0`` (reference [3]'s external interval tree, O(log_B n + t') I/Os), then
filter the ``T'`` stabbed segments by the query's y-window in memory.

The filter step is free in I/Os, but ``T'`` counts *every* segment crossing
the line — the y-window discards most of them when the query segment is
short.  The paper's structures avoid retrieving those discarded segments at
all; benchmark E10 measures exactly this gap.
"""

from __future__ import annotations

from typing import Iterable, List

from ..geometry import Segment, VerticalQuery, vs_intersects
from ..geometry.kernels import list_query_hits
from ..iosim import Pager, StorageError
from ..storage.interval_tree import ExternalIntervalTree


class StabFilterIndex:
    """Interval tree over x-projections + in-memory y filtering."""

    def __init__(self, pager: Pager, tree: ExternalIntervalTree):
        self.pager = pager
        self.tree = tree

    @classmethod
    def build(cls, pager: Pager, segments: Iterable[Segment]) -> "StabFilterIndex":
        intervals = [(s.xmin, s.xmax, s) for s in segments]
        return cls(pager, ExternalIntervalTree.build(pager, intervals))

    def query(self, q: VerticalQuery) -> List[Segment]:
        with self.pager.operation():
            with self.pager.device.tagged("stab"):
                stabbed = self.tree.stab(q.x)
        # The y filter is free in I/Os (in-memory), exactly the point of
        # the baseline: it has already paid for every stabbed segment.
        segs = [s for _l, _r, s in stabbed]
        hits = list_query_hits(segs, q)
        if hits is None:
            return [s for s in segs if vs_intersects(s, q)]
        return hits

    def query_batch(self, queries: Iterable[VerticalQuery]) -> List[List[Segment]]:
        """Sequential loop fallback (uniform batch API, no shared descent)."""
        return [self.query(q) for q in queries]

    def stabbed_count(self, q: VerticalQuery) -> int:
        """``T'``: how many segments the stab retrieves before filtering."""
        with self.pager.operation():
            return len(self.tree.stab(q.x))

    def insert(self, segment: Segment) -> None:
        with self.pager.operation():
            self.tree.insert(segment.xmin, segment.xmax, segment)

    def delete(self, segment: Segment) -> bool:
        raise NotImplementedError(
            "the stab-and-filter baseline is insert-only (like the "
            "semi-dynamic external interval tree it is built on)"
        )

    def all_segments(self) -> List[Segment]:
        return [s for _l, _r, s in self.tree.items()]

    def __len__(self) -> int:
        return len(self.tree)

    # ------------------------------------------------------------------
    # verification & recovery support
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Every stored interval is its segment's x-projection; counts agree."""
        count = 0
        for lo, hi, s in self.tree.items():
            assert lo <= hi, f"empty x-projection [{lo}, {hi}]"
            assert lo == s.xmin and hi == s.xmax, (
                f"interval [{lo}, {hi}] is not the x-projection of {s!r}"
            )
            count += 1
        assert count == len(self.tree), (
            f"size mismatch: {count} != {len(self.tree)}"
        )

    def verify(self) -> List[str]:
        try:
            self.check_invariants()
        except AssertionError as exc:
            return [f"stab-filter: invariant violated: {exc}"]
        except StorageError as exc:
            return [f"stab-filter: {type(exc).__name__}: {exc}"]
        return []

    def snapshot_state(self) -> tuple:
        return (self.tree.root_pid, self.tree._size)

    def restore_state(self, state: tuple) -> None:
        self.tree.root_pid, self.tree._size = state

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        return {"root_pid": self.tree.root_pid, "size": self.tree._size,
                "fanout": self.tree.fanout}

    @classmethod
    def attach(cls, pager: Pager, meta: dict) -> "StabFilterIndex":
        tree = ExternalIntervalTree(pager, fanout=meta["fanout"])
        tree.root_pid = meta["root_pid"]
        tree._size = meta["size"]
        return cls(pager, tree)
