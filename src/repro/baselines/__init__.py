"""Comparator indexes: full scan, stab-and-filter, uniform grid, R-tree."""

from .grid import GridIndex
from .naive import FullScanIndex
from .rtree import RTreeIndex
from .stab_filter import StabFilterIndex

__all__ = ["FullScanIndex", "GridIndex", "RTreeIndex", "StabFilterIndex"]
