"""Line-based segments and their queries (Section 2 of the paper).

A set of segments is *line-based* when every segment has at least one
endpoint on a common *base line* and all segments with exactly one endpoint
on it lie in the same half-plane.  Section 2's data structures operate
entirely in a frame attached to the base line:

* ``u`` — the coordinate along the base line;
* ``h`` — the perpendicular distance from the base line (``h >= 0``).

A :class:`LineBasedSegment` runs from its *base point* ``(u0, 0)`` to its
*apex* ``(u1, h1)``.  A query (:class:`HQuery`) is a generalized segment
parallel to the base line at height ``h``.  Both the paper's horizontal
picture (Section 2) and the vertical base lines of the two-level structures
(Sections 3–4) reduce to this frame via :mod:`repro.geometry.transform`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Hashable, Optional, Tuple

from .filtered import ball, compare_u_at, lb_fp
from .point import Coordinate, check_coordinate


class LineBasedSegment:
    """A segment with base point ``(u0, 0)`` and apex ``(u1, h1)``, ``h1 >= 0``.

    ``h1 == 0`` is the degenerate case of a segment lying on the base line
    (permitted in a line-based set; the two-level structures route those to
    the on-line interval trees instead).

    ``payload`` carries the original database object (usually a plane
    :class:`~repro.geometry.segment.Segment`) so the index reports originals,
    not frame images.
    """

    __slots__ = ("u0", "u1", "h1", "payload", "label", "_fp", "_bkey")

    def __init__(
        self,
        u0: Coordinate,
        u1: Coordinate,
        h1: Coordinate,
        payload=None,
        label: Optional[Hashable] = None,
    ):
        self.u0 = check_coordinate(u0)
        self.u1 = check_coordinate(u1)
        self.h1 = check_coordinate(h1)
        if self.h1 < 0:
            raise ValueError(f"apex height must be >= 0, got {h1}")
        if self.h1 == 0 and self.u0 == self.u1:
            raise ValueError("degenerate line-based segment (a point)")
        self.payload = payload
        self.label = label if label is not None else (self.u0, self.u1, self.h1)
        # Float coefficients for the filtered fast path and the lazily
        # computed base-order key (hot in PST sorts and witness pruning).
        self._fp = lb_fp(self.u0, self.u1, self.h1)
        self._bkey: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def on_base_line(self) -> bool:
        """True when the whole segment lies on the base line."""
        return self.h1 == 0

    def u_at(self, h: Coordinate) -> Fraction:
        """The u-coordinate where the segment meets height ``h``.

        Requires ``0 <= h <= h1`` and ``h1 > 0``.
        """
        if self.on_base_line:
            raise ValueError("u_at is undefined for a segment on the base line")
        if not (0 <= h <= self.h1):
            raise ValueError(f"height {h} outside [0, {self.h1}]")
        return self.u_at_unchecked(h)

    def u_at_unchecked(self, h: Coordinate) -> Fraction:
        """:meth:`u_at` without the base-line/range validation (inner loops)."""
        return self.u0 + Fraction(self.u1 - self.u0) * Fraction(h, self.h1)

    def base_order_key(self) -> Tuple:
        """Sort key ordering segments by base-line intersection, then angle.

        Segments in a PST node are "ordered with respect to their
        intersections with the base line"; segments sharing a base point are
        tie-broken by their direction (touching is allowed, crossing is not,
        so the angular order is consistent at every height).  Computed once
        and cached (the PST consults it on every witness-pruning step).
        """
        key = self._bkey
        if key is None:
            if self.on_base_line:
                direction = math.inf if self.u1 > self.u0 else -math.inf
                key = (min(self.u0, self.u1), direction)
            else:
                key = (self.u0, Fraction(self.u1 - self.u0, self.h1))
            self._bkey = key
        return key

    def __eq__(self, other) -> bool:
        if not isinstance(other, LineBasedSegment):
            return NotImplemented
        return (
            self.u0 == other.u0
            and self.u1 == other.u1
            and self.h1 == other.h1
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((self.u0, self.u1, self.h1, self.label))

    def __repr__(self) -> str:
        return (
            f"LineBasedSegment(base=({self.u0!r}, 0), apex=({self.u1!r}, "
            f"{self.h1!r}), label={self.label!r})"
        )


class HQuery:
    """A generalized query segment parallel to the base line at height ``h``.

    ``ulo``/``uhi`` bound the query along the base-line direction; ``None``
    means unbounded (ray or full line).
    """

    __slots__ = ("h", "ulo", "uhi", "_balls")

    def __init__(
        self,
        h: Coordinate,
        ulo: Optional[Coordinate] = None,
        uhi: Optional[Coordinate] = None,
    ):
        self.h = check_coordinate(h)
        if self.h < 0:
            # Footnote 3: a query below the base line intersects nothing; we
            # reject it so callers surface frame bugs early.
            raise ValueError(f"query height must be >= 0, got {h}")
        self.ulo = check_coordinate(ulo) if ulo is not None else None
        self.uhi = check_coordinate(uhi) if uhi is not None else None
        if self.ulo is not None and self.uhi is not None and self.ulo > self.uhi:
            raise ValueError(f"empty query: ulo={ulo} > uhi={uhi}")
        self._balls = None

    def balls(self) -> Tuple:
        """Cached ``(h, ulo, uhi)`` :func:`~repro.geometry.filtered.ball`\\ s
        for the filtered classification kernels (``None`` for absent ends)."""
        cached = self._balls
        if cached is None:
            cached = (
                ball(self.h),
                ball(self.ulo) if self.ulo is not None else None,
                ball(self.uhi) if self.uhi is not None else None,
            )
            self._balls = cached
        return cached

    @classmethod
    def line(cls, h: Coordinate) -> "HQuery":
        return cls(h)

    @classmethod
    def segment(cls, h: Coordinate, ulo: Coordinate, uhi: Coordinate) -> "HQuery":
        return cls(h, ulo=ulo, uhi=uhi)

    @classmethod
    def _trusted(cls, h: Coordinate, ulo: Optional[Coordinate],
                 uhi: Optional[Coordinate]) -> "HQuery":
        """Construct without validation for callers whose inputs already
        satisfy the invariants (coordinates checked, ``h >= 0``,
        ``ulo <= uhi``) — frame transforms build one HQuery per node
        visit, making ``__init__``'s re-validation a hot-path tax."""
        self = object.__new__(cls)
        self.h = h
        self.ulo = ulo
        self.uhi = uhi
        self._balls = None
        return self

    def covers_u(self, u: Coordinate) -> bool:
        if self.ulo is not None and u < self.ulo:
            return False
        if self.uhi is not None and u > self.uhi:
            return False
        return True

    def u_interval_overlaps(self, lo: Coordinate, hi: Coordinate) -> bool:
        if self.uhi is not None and lo > self.uhi:
            return False
        if self.ulo is not None and hi < self.ulo:
            return False
        return True

    def __repr__(self) -> str:
        return f"HQuery(h={self.h!r}, ulo={self.ulo!r}, uhi={self.uhi!r})"


def lb_intersects(segment: LineBasedSegment, query: HQuery) -> bool:
    """Exact test: does a line-based segment meet a parallel query segment?"""
    if segment.on_base_line:
        if query.h != 0:
            return False
        return query.u_interval_overlaps(
            min(segment.u0, segment.u1), max(segment.u0, segment.u1)
        )
    if query.h > segment.h1:
        return False
    hb, lob, hib = query.balls()
    if query.ulo is not None and compare_u_at(segment, query.h, query.ulo, hb, lob) < 0:
        return False
    if query.uhi is not None and compare_u_at(segment, query.h, query.uhi, hb, hib) > 0:
        return False
    return True


def lb_cross(s1: LineBasedSegment, s2: LineBasedSegment) -> bool:
    """Do two line-based segments cross (forbidden in an NCT set)?

    Implemented by mapping into the plane (the frame map is affine, so
    crossing is preserved) and reusing the exact plane predicate.
    """
    from .predicates import segments_cross
    from .segment import Segment

    p1 = Segment.from_coords(s1.u0, 0, s1.u1, s1.h1, label=1)
    p2 = Segment.from_coords(s2.u0, 0, s2.u1, s2.h1, label=2)
    return segments_cross(p1, p2)
