"""Plane segments.

A :class:`Segment` is a closed, possibly degenerate-free straight segment
with exact rational endpoints.  Segments are normalised so that the first
endpoint is lexicographically smaller; a ``label`` identifies the segment
through splitting and re-storage (the two-level structures store fragments
of a segment in several places but must report the original exactly once).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Optional

from .filtered import segment_fp
from .point import Coordinate, Point


class Segment:
    """A non-degenerate closed plane segment with exact endpoints.

    Parameters
    ----------
    p, q:
        The endpoints (order irrelevant; stored lexicographically).
    label:
        Stable identity used for duplicate-free reporting.  Defaults to the
        endpoint pair itself, which is adequate when all segments are
        distinct.
    """

    __slots__ = ("start", "end", "label", "_fp")

    def __init__(self, p: Point, q: Point, label: Optional[Hashable] = None):
        if p == q:
            raise ValueError(f"degenerate segment at {p!r}")
        if q < p:
            p, q = q, p
        self.start = p
        self.end = q
        self.label = label if label is not None else (p.as_tuple(), q.as_tuple())
        # Float coefficients (+ error radii) for the filtered-arithmetic
        # fast path; None disables it for this segment (exact still works).
        self._fp = segment_fp(p.x, p.y, q.x, q.y)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coords(
        cls,
        x1: Coordinate,
        y1: Coordinate,
        x2: Coordinate,
        y2: Coordinate,
        label: Optional[Hashable] = None,
    ) -> "Segment":
        return cls(Point(x1, y1), Point(x2, y2), label=label)

    # ------------------------------------------------------------------
    # extents
    # ------------------------------------------------------------------
    @property
    def xmin(self) -> Coordinate:
        return self.start.x

    @property
    def xmax(self) -> Coordinate:
        return self.end.x

    @property
    def ymin(self) -> Coordinate:
        return min(self.start.y, self.end.y)

    @property
    def ymax(self) -> Coordinate:
        return max(self.start.y, self.end.y)

    @property
    def is_vertical(self) -> bool:
        return self.start.x == self.end.x

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def y_at(self, x: Coordinate) -> Fraction:
        """The y-coordinate of the segment at vertical line ``x``.

        Requires ``xmin <= x <= xmax`` and a non-vertical segment.
        """
        if self.is_vertical:
            raise ValueError("y_at is undefined for a vertical segment")
        if not (self.xmin <= x <= self.xmax):
            raise ValueError(f"x={x} outside segment x-range [{self.xmin}, {self.xmax}]")
        return self.y_at_unchecked(x)

    def y_at_unchecked(self, x: Coordinate) -> Fraction:
        """:meth:`y_at` without the vertical/range validation.

        For index inner loops whose invariants already guarantee a
        non-vertical segment spanning ``x``.
        """
        dx = self.end.x - self.start.x
        return self.start.y + Fraction(self.end.y - self.start.y) * Fraction(
            x - self.start.x, dx
        )

    def spans_x(self, x: Coordinate) -> bool:
        """True when the vertical line at ``x`` meets the segment's x-extent."""
        return self.xmin <= x <= self.xmax

    def with_label(self, label: Hashable) -> "Segment":
        return Segment(self.start, self.end, label=label)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (
            self.start == other.start
            and self.end == other.end
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((self.start, self.end, self.label))

    def __repr__(self) -> str:
        return (
            f"Segment(({self.start.x!r}, {self.start.y!r}) -> "
            f"({self.end.x!r}, {self.end.y!r}), label={self.label!r})"
        )
