"""Validation of the NCT (non-crossing, possibly touching) property.

Segment databases store segments that never *cross* but may *touch*
(shared endpoints, T-junctions).  This module detects forbidden crossings:

* :func:`find_crossing_bruteforce` — exact O(N^2) pairwise check; the oracle.
* :func:`find_crossing_sweep` — an O(N log N)-flavoured plane sweep used to
  validate large generated workloads.  Vertical segments and
  vertical/non-vertical interactions are handled by dedicated passes; the
  sweep proper runs over non-vertical segments and checks status neighbours
  at every event, plus the full run of status segments through each event
  point (which covers the degenerate multi-touch configurations a classical
  Shamos–Hoey check misses).
* :func:`validate_nct` — raises :class:`CrossingError` when a crossing exists.
"""

from __future__ import annotations

import bisect
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from .filtered import ball, compare_slopes, compare_y_at, compare_y_at_pair
from .predicates import segments_cross
from .segment import Segment


class CrossingError(ValueError):
    """Raised when a supposed NCT set contains a crossing pair."""

    def __init__(self, s1: Segment, s2: Segment):
        self.pair = (s1, s2)
        super().__init__(f"segments cross: {s1!r} x {s2!r}")


def find_crossing_bruteforce(
    segments: Sequence[Segment],
) -> Optional[Tuple[Segment, Segment]]:
    """Return some crossing pair, or ``None``.  Exact; O(N^2)."""
    for i, s1 in enumerate(segments):
        for s2 in segments[i + 1 :]:
            if segments_cross(s1, s2):
                return (s1, s2)
    return None


def _split_verticals(
    segments: Sequence[Segment],
) -> Tuple[List[Segment], List[Segment]]:
    verticals = [s for s in segments if s.is_vertical]
    others = [s for s in segments if not s.is_vertical]
    return verticals, others


def _vertical_vertical_crossing(
    verticals: List[Segment],
) -> Optional[Tuple[Segment, Segment]]:
    """Collinear vertical segments overlap iff their y-intervals overlap in
    more than a point."""
    by_x: dict = {}
    for s in verticals:
        by_x.setdefault(s.start.x, []).append(s)
    for group in by_x.values():
        group.sort(key=lambda s: (s.ymin, s.ymax))
        for prev, cur in zip(group, group[1:]):
            if cur.ymin < prev.ymax:
                return (prev, cur)
    return None


def _vertical_nonvertical_crossing(
    verticals: List[Segment], others: List[Segment]
) -> Optional[Tuple[Segment, Segment]]:
    """Check each vertical against the non-verticals spanning its x.

    Offline interval stabbing: sweep x ascending with an active set keyed by
    xmax.  Exact; output-sensitive in the number of (vertical, spanning
    segment) candidate pairs.
    """
    import heapq

    others_sorted = sorted(others, key=lambda s: s.xmin)
    verts_sorted = sorted(verticals, key=lambda s: s.start.x)
    active: List[Tuple] = []  # heap of (xmax, tiebreak, segment)
    counter = 0
    idx = 0
    for v in verts_sorted:
        x = v.start.x
        while idx < len(others_sorted) and others_sorted[idx].xmin <= x:
            s = others_sorted[idx]
            heapq.heappush(active, (s.xmax, counter, s))
            counter += 1
            idx += 1
        while active and active[0][0] < x:
            heapq.heappop(active)
        for _, _, s in active:
            if s.xmax >= x and segments_cross(v, s):
                return (v, s)
    return None


class _SweepStatus:
    """Status list for the non-vertical sweep, ordered by y at the sweep x.

    Ties (segments through the event point) are broken by slope, which is the
    order the segments assume immediately to the right of the event.  The
    order is decided by sign comparisons through the filtered kernels of
    :mod:`repro.geometry.filtered` — exact, but skipping the per-probe
    ``Fraction`` slope/ordinate construction away from degeneracies.
    """

    def __init__(self):
        self._items: List[Segment] = []
        self._x: Fraction = Fraction(0)
        self._xb = None  # ball of the sweep x, shared by every comparison

    def set_x(self, x) -> None:
        self._x = x
        self._xb = ball(x)

    def _clamped_x(self, s: Segment):
        # Clamp: a segment in the status always spans the sweep line, but the
        # event point may sit exactly on its endpoint.
        x = self._x
        if x < s.xmin:
            return s.xmin
        if x > s.xmax:
            return s.xmax
        return x

    def _cmp(self, a: Segment, b: Segment) -> int:
        """Sign of key(a) - key(b): ordinate at the sweep line, then slope."""
        if a is b:
            return 0
        xa = self._clamped_x(a)
        xb = self._clamped_x(b)
        if xa == xb:
            c = compare_y_at_pair(a, b, xa, self._xb if xa is self._x else None)
        else:  # pragma: no cover - status members always span the sweep line
            ya = a.y_at_unchecked(xa)
            yb = b.y_at_unchecked(xb)
            c = (ya > yb) - (ya < yb)
        if c:
            return c
        return compare_slopes(a, b)

    def _search_left(self, s: Segment) -> int:
        """First position whose item does not order strictly before ``s``.

        ``_cmp(item, s)`` is monotone along the status, so bisecting the
        sign sequence against 0 finds the boundary (the ``key=`` form
        needs Python 3.10+).
        """
        return bisect.bisect_left(self._items, 0, key=lambda item: self._cmp(item, s))

    def insert(self, s: Segment) -> int:
        pos = self._search_left(s)
        self._items.insert(pos, s)
        return pos

    def remove(self, s: Segment) -> int:
        pos = self._search_left(s)
        # Scan the tie run for the exact object (labels may repeat keys).
        for i in range(pos, len(self._items)):
            item = self._items[i]
            if item is s:
                del self._items[i]
                return i
            if self._cmp(item, s) > 0:
                break
        # Fallback: linear scan (defensive; keys should always match).
        for i, item in enumerate(self._items):  # pragma: no cover
            if item is s:
                del self._items[i]
                return i
        raise KeyError(f"segment not in sweep status: {s!r}")  # pragma: no cover

    def neighbours(self, pos: int) -> Iterable[Tuple[Segment, Segment]]:
        if 0 < pos <= len(self._items) - 1:
            yield (self._items[pos - 1], self._items[pos])
        if pos < len(self._items) - 1 and pos >= 0:
            yield (self._items[pos], self._items[pos + 1])

    def run_through_y(self, y) -> List[Segment]:
        """All status segments whose y at the sweep x equals ``y``."""
        yb = ball(y)

        def cmp_y(s: Segment) -> int:
            x = self._clamped_x(s)
            return compare_y_at(s, x, y, self._xb if x is self._x else None, yb)

        items = self._items
        lo = bisect.bisect_left(items, 0, key=cmp_y)
        run = []
        for s in items[lo:]:
            if cmp_y(s) != 0:
                break
            run.append(s)
        return run

    def adjacent_pair_after_removal(self, pos: int) -> Optional[Tuple[Segment, Segment]]:
        if 0 < pos <= len(self._items) - 1:
            return (self._items[pos - 1], self._items[pos])
        return None


def find_crossing_sweep(
    segments: Sequence[Segment],
) -> Optional[Tuple[Segment, Segment]]:
    """Plane-sweep crossing detection among possibly-touching segments."""
    verticals, others = _split_verticals(list(segments))

    found = _vertical_vertical_crossing(verticals)
    if found is not None:
        return found
    found = _vertical_nonvertical_crossing(verticals, others)
    if found is not None:
        return found

    # Events: (x, y, kind, segment); kind 1 = right endpoint first at a
    # point, then left endpoints (kind 2) — removals precede insertions so
    # end-to-end touches never place both segments in the status at once.
    events: List[Tuple] = []
    for idx, s in enumerate(others):
        events.append((s.start.x, s.start.y, 2, idx, s))
        events.append((s.end.x, s.end.y, 1, idx, s))
    events.sort(key=lambda e: (e[0], e[1], e[2], e[3]))

    status = _SweepStatus()
    for x, y, kind, _idx, seg in events:
        status.set_x(x)
        if kind == 1:  # right endpoint: remove, check the new adjacency
            pos = status.remove(seg)
            pair = status.adjacent_pair_after_removal(pos)
            if pair is not None and segments_cross(*pair):
                return pair
        else:  # left endpoint: insert, check both adjacencies
            pos = status.insert(seg)
            for pair in status.neighbours(pos):
                if segments_cross(*pair):
                    return pair
        # Degenerate configurations: every pair of status segments meeting
        # the event point must be mutually non-crossing.
        run = status.run_through_y(y)
        for i, s1 in enumerate(run):
            for s2 in run[i + 1 :]:
                if segments_cross(s1, s2):
                    return (s1, s2)
    return None


def validate_nct(segments: Sequence[Segment], method: str = "auto") -> None:
    """Raise :class:`CrossingError` when the set contains a crossing pair.

    ``method`` is ``"auto"`` (brute force below 1500 segments, sweep above),
    ``"brute"``, or ``"sweep"``.
    """
    segments = list(segments)
    if method == "auto":
        method = "brute" if len(segments) <= 1500 else "sweep"
    if method == "brute":
        found = find_crossing_bruteforce(segments)
    elif method == "sweep":
        found = find_crossing_sweep(segments)
    else:
        raise ValueError(f"unknown method {method!r}")
    if found is not None:
        raise CrossingError(*found)
