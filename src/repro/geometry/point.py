"""Exact 2-D points.

Coordinates are exact rationals (`int` or :class:`fractions.Fraction`);
floats are rejected so geometric predicates never suffer rounding error.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Tuple, Union

Coordinate = Union[int, Fraction]


def check_coordinate(value) -> Coordinate:
    """Validate one coordinate, rejecting floats and other inexact types."""
    if isinstance(value, bool):
        raise TypeError("coordinates must be int or Fraction, got bool")
    if isinstance(value, Rational):
        return value
    raise TypeError(
        f"coordinates must be exact rationals (int or Fraction), got "
        f"{type(value).__name__}"
    )


class Point:
    """An exact point on the plane."""

    __slots__ = ("x", "y")

    def __init__(self, x: Coordinate, y: Coordinate):
        self.x = check_coordinate(x)
        self.y = check_coordinate(y)

    def as_tuple(self) -> Tuple[Coordinate, Coordinate]:
        return (self.x, self.y)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __lt__(self, other: "Point") -> bool:
        """Lexicographic (x, y) order — the sweep/endpoint order."""
        return (self.x, self.y) < (other.x, other.y)

    def __le__(self, other: "Point") -> bool:
        return (self.x, self.y) <= (other.x, other.y)

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        return f"Point({self.x!r}, {self.y!r})"
