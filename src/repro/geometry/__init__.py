"""Exact plane geometry for segment databases.

Everything is exact rational arithmetic — no floats, no epsilons.  The
package provides points, NCT segments, generalized vertical queries, the
line-based frame of Section 2, frame transforms, and crossing detection.
"""

from .linebased import HQuery, LineBasedSegment, lb_cross, lb_intersects
from .nct import (
    CrossingError,
    find_crossing_bruteforce,
    find_crossing_sweep,
    validate_nct,
)
from .point import Coordinate, Point, check_coordinate
from .predicates import (
    on_segment,
    orientation,
    segments_cross,
    segments_intersect,
    segments_touch,
)
from .query import VerticalQuery, query_as_segment, vs_intersects
from .segment import Segment
from .transform import FixedDirectionFrame, VerticalBaseFrame

__all__ = [
    "Coordinate",
    "CrossingError",
    "FixedDirectionFrame",
    "HQuery",
    "LineBasedSegment",
    "Point",
    "Segment",
    "VerticalBaseFrame",
    "VerticalQuery",
    "check_coordinate",
    "find_crossing_bruteforce",
    "find_crossing_sweep",
    "lb_cross",
    "lb_intersects",
    "on_segment",
    "orientation",
    "query_as_segment",
    "segments_cross",
    "segments_intersect",
    "segments_touch",
    "validate_nct",
    "vs_intersects",
]
