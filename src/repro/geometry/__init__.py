"""Exact plane geometry for segment databases.

Every predicate is exact.  Hot sign tests run through the filtered
arithmetic kernel (:mod:`repro.geometry.filtered`): a certified
double-precision fast path with an exact rational fallback, so results
are bit-identical to pure ``Fraction`` arithmetic.  The package provides
points, NCT segments, generalized vertical queries, the line-based frame
of Section 2, frame transforms, and crossing detection.
"""

from .filtered import (
    FilterStats,
    STATS as FILTER_STATS,
    ball,
    compare_interp,
    compare_slopes,
    compare_u_at,
    compare_y_at,
    compare_y_at_pair,
    exact_only_enabled,
    filter_stats,
    reset_filter_stats,
    set_exact_only,
    sign_orientation,
)
from .linebased import HQuery, LineBasedSegment, lb_cross, lb_intersects
from .nct import (
    CrossingError,
    find_crossing_bruteforce,
    find_crossing_sweep,
    validate_nct,
)
from .point import Coordinate, Point, check_coordinate
from .predicates import (
    on_segment,
    orientation,
    segments_cross,
    segments_intersect,
    segments_touch,
)
from .query import VerticalQuery, query_as_segment, vs_intersects
from .segment import Segment
from .transform import FixedDirectionFrame, VerticalBaseFrame

__all__ = [
    "Coordinate",
    "CrossingError",
    "FILTER_STATS",
    "FilterStats",
    "FixedDirectionFrame",
    "HQuery",
    "LineBasedSegment",
    "Point",
    "Segment",
    "VerticalBaseFrame",
    "VerticalQuery",
    "ball",
    "check_coordinate",
    "compare_interp",
    "compare_slopes",
    "compare_u_at",
    "compare_y_at",
    "compare_y_at_pair",
    "exact_only_enabled",
    "filter_stats",
    "find_crossing_bruteforce",
    "find_crossing_sweep",
    "lb_cross",
    "lb_intersects",
    "on_segment",
    "orientation",
    "query_as_segment",
    "reset_filter_stats",
    "segments_cross",
    "segments_intersect",
    "segments_touch",
    "set_exact_only",
    "sign_orientation",
    "validate_nct",
    "vs_intersects",
]
