"""Filtered exact arithmetic: a float fast path with a rational fallback.

Every comparison an index makes during a query is a *sign test*: is the
segment's ordinate at the query line above, below, or on a bound?  The
exact rational arithmetic used everywhere else in this package decides
these signs correctly but pays big-integer multiplications (and gcd
normalisations) per comparison.  This module implements the standard
remedy from computational geometry — a floating-point *filter*:

1. evaluate the sign expression in double precision, carrying a running
   *absolute error bound* alongside the value (forward error analysis);
2. if ``|value| > bound``, the double-precision sign is **certified**
   equal to the exact sign — return it (a *fast hit*);
3. otherwise fall back to the exact ``Fraction``/``int`` evaluation of
   the *same* polynomial (an *exact fallback*).

Because a certified sign always equals the exact sign, every caller's
control flow — and therefore every query result and every simulated
block transfer — is bit-identical to the exact-only computation
(DESIGN.md §9 derives the error bounds).

All sign expressions are *division-free* cross-multiplied forms, so the
fallback needs no rational division either:

* ``sign(y_at(x) - b) = sign((sy - b)·dx + dy·(x - sx))`` for a
  non-vertical segment (``dx > 0`` after normalisation);
* ``sign(u_at(h) - b) = sign((u0 - b)·h1 + du·h)`` (``h1 > 0``);
* the pairwise and interpolation forms multiply through analogously.

The filter is process-global state: :data:`STATS` counts hits and
fallbacks (surfaced through ``io_report()`` and the metrics registry),
and ``REPRO_EXACT_ONLY=1`` / :func:`set_exact_only` disables the fast
path entirely — the escape hatch used by the equivalence tests and the
E16 benchmark's before/after measurement.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

#: Per-operation relative rounding bound.  The true bound for one IEEE-754
#: double operation is the unit roundoff ``2**-53``; we use twice that so
#: the (float-evaluated) error expressions' own rounding is swallowed.
_EPS = 2.0 ** -52
#: Final multiplicative headroom on the accumulated bound: covers the
#: rounding of the error-bound arithmetic itself (dozens of operations at
#: ``2**-53`` relative each — ``1e-7`` over-covers by ~40 orders).
_SLOP = 1.0000001
#: Additive floor on every certified bound: absolute rounding error in the
#: subnormal range is not captured by relative terms.  Any sign expression
#: whose true magnitude is below this is sent to the exact path instead.
_TINY = 1e-300
#: Largest int magnitude exactly representable as a double (2**53).
_INT_EXACT = 9007199254740992

#: A ball: a float value with an absolute error radius, or ``None`` when
#: the quantity has no finite double approximation.
Ball = Optional[Tuple[float, float]]


class FilterStats:
    """Process-wide filter telemetry: certified signs vs exact fallbacks."""

    __slots__ = ("fast_hits", "exact_fallbacks")

    def __init__(self):
        self.fast_hits = 0
        self.exact_fallbacks = 0

    def reset(self) -> None:
        self.fast_hits = 0
        self.exact_fallbacks = 0

    def snapshot(self) -> Tuple[int, int]:
        return (self.fast_hits, self.exact_fallbacks)

    @property
    def total(self) -> int:
        return self.fast_hits + self.exact_fallbacks

    @property
    def hit_rate(self) -> Optional[float]:
        total = self.total
        return self.fast_hits / total if total else None


STATS = FilterStats()


def reset_filter_stats() -> None:
    STATS.reset()


def filter_stats() -> dict:
    """JSON-ready snapshot of the filter counters (for ``io_report()``)."""
    return {
        "fast_hits": STATS.fast_hits,
        "exact_fallbacks": STATS.exact_fallbacks,
        "hit_rate": STATS.hit_rate,
        "exact_only": _exact_only,
    }


def _env_exact_only() -> bool:
    return os.environ.get("REPRO_EXACT_ONLY", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


_exact_only = _env_exact_only()


def set_exact_only(flag: bool) -> None:
    """Globally disable (``True``) or re-enable (``False``) the fast path."""
    global _exact_only
    _exact_only = bool(flag)


def exact_only_enabled() -> bool:
    return _exact_only


# ----------------------------------------------------------------------
# balls: float value + certified absolute error radius
# ----------------------------------------------------------------------
def ball(value) -> Ball:
    """``(float(value), error_radius)`` or ``None`` when not finite.

    Conversion of an ``int`` or ``Fraction`` to ``float`` is correctly
    rounded, so the radius is at most half an ulp — bounded here by
    ``|v|·_EPS + _TINY``.  Small ints convert exactly (radius 0).
    """
    try:
        v = float(value)
    except (OverflowError, ValueError):
        return None
    if v - v != 0.0:  # inf (inf - inf = nan) or nan: no finite approximation
        return None
    if type(value) is int and -_INT_EXACT <= value <= _INT_EXACT:
        return (v, 0.0)
    return (v, abs(v) * _EPS + _TINY)


def segment_fp(sx, sy, ex, ey) -> Optional[Tuple]:
    """Cached float coefficients for a plane segment ``(sx,sy)->(ex,ey)``.

    Layout: ``(sx, esx, sy, esy, dx, edx, dy, edy)`` — start point plus
    the endpoint deltas, each with its error radius.  ``None`` when any
    coordinate has no finite double approximation (fast path disabled for
    that segment; the exact path still works).
    """
    bsx = ball(sx)
    bsy = ball(sy)
    bex = ball(ex)
    bey = ball(ey)
    if bsx is None or bsy is None or bex is None or bey is None:
        return None
    fsx, esx = bsx
    fsy, esy = bsy
    fex, eex = bex
    fey, eey = bey
    dx = fex - fsx
    edx = eex + esx + abs(dx) * _EPS
    dy = fey - fsy
    edy = eey + esy + abs(dy) * _EPS
    return (fsx, esx, fsy, esy, dx, edx, dy, edy)


def lb_fp(u0, u1, h1) -> Optional[Tuple]:
    """Cached float coefficients for a line-based segment.

    Layout: ``(u0, eu0, du, edu, h1, eh1)`` with ``du = u1 - u0``.
    """
    b0 = ball(u0)
    b1 = ball(u1)
    bh = ball(h1)
    if b0 is None or b1 is None or bh is None:
        return None
    fu0, eu0 = b0
    fu1, eu1 = b1
    fh1, eh1 = bh
    du = fu1 - fu0
    edu = eu1 + eu0 + abs(du) * _EPS
    return (fu0, eu0, du, edu, fh1, eh1)


def _sign(value) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


# ----------------------------------------------------------------------
# sign kernels
# ----------------------------------------------------------------------
def sign_orientation(ax, ay, bx, by, cx, cy) -> int:
    """Sign of the cross product ``(b - a) x (c - a)``: 1 ccw, -1 cw, 0."""
    if not _exact_only:
        ba = ball(ax)
        if ba is not None:
            bb_ = ball(ay)
            bc = ball(bx)
            bd = ball(by)
            be = ball(cx)
            bf = ball(cy)
            if (bb_ is not None and bc is not None and bd is not None
                    and be is not None and bf is not None):
                fax, eax = ba
                fay, eay = bb_
                fbx, ebx = bc
                fby, eby = bd
                fcx, ecx = be
                fcy, ecy = bf
                u = fbx - fax
                eu = ebx + eax + abs(u) * _EPS
                w = fcy - fay
                ew = ecy + eay + abs(w) * _EPS
                p = u * w
                ep = abs(u) * ew + abs(w) * eu + eu * ew + abs(p) * _EPS
                r = fby - fay
                er = eby + eay + abs(r) * _EPS
                z = fcx - fax
                ez = ecx + eax + abs(z) * _EPS
                q = r * z
                eq = abs(r) * ez + abs(z) * er + er * ez + abs(q) * _EPS
                v = p - q
                err = (ep + eq + abs(v) * _EPS) * _SLOP + _TINY
                if v > err:
                    STATS.fast_hits += 1
                    return 1
                if -v > err:
                    STATS.fast_hits += 1
                    return -1
    STATS.exact_fallbacks += 1
    return _sign((bx - ax) * (cy - ay) - (by - ay) * (cx - ax))


def compare_y_at(segment, x, bound, xb: Ball = None, bb: Ball = None) -> int:
    """Sign of ``segment.y_at(x) - bound`` for a non-vertical segment.

    ``xb``/``bb`` are optional precomputed :func:`ball`\\ s of ``x`` and
    ``bound`` (hot callers cache them per query).  The division-free form
    is ``sign((sy - b)·dx + dy·(x - sx))``, valid because ``dx > 0``.
    """
    if not _exact_only:
        fp = segment._fp
        if fp is not None:
            if xb is None:
                xb = ball(x)
            if xb is not None:
                if bb is None:
                    bb = ball(bound)
                if bb is not None:
                    fsx, esx, fsy, esy, dx, edx, dy, edy = fp
                    fx, ex = xb
                    fb, eb = bb
                    d1 = fsy - fb
                    e1 = esy + eb + abs(d1) * _EPS
                    t1 = d1 * dx
                    et1 = abs(d1) * edx + abs(dx) * e1 + e1 * edx + abs(t1) * _EPS
                    d2 = fx - fsx
                    e2 = ex + esx + abs(d2) * _EPS
                    t2 = dy * d2
                    et2 = abs(dy) * e2 + abs(d2) * edy + e2 * edy + abs(t2) * _EPS
                    v = t1 + t2
                    err = (et1 + et2 + abs(v) * _EPS) * _SLOP + _TINY
                    if v > err:
                        STATS.fast_hits += 1
                        return 1
                    if -v > err:
                        STATS.fast_hits += 1
                        return -1
    STATS.exact_fallbacks += 1
    start = segment.start
    end = segment.end
    return _sign(
        (start.y - bound) * (end.x - start.x)
        + (end.y - start.y) * (x - start.x)
    )


def compare_y_at_pair(s1, s2, x, xb: Ball = None) -> int:
    """Sign of ``s1.y_at(x) - s2.y_at(x)`` for two non-vertical segments.

    Cross-multiplied through both (positive) run lengths:
    ``sign((sy1 - sy2)·dx1·dx2 + dy1·(x - sx1)·dx2 - dy2·(x - sx2)·dx1)``.
    """
    if not _exact_only:
        fp1 = s1._fp
        fp2 = s2._fp
        if fp1 is not None and fp2 is not None:
            if xb is None:
                xb = ball(x)
            if xb is not None:
                sx1, esx1, sy1, esy1, dx1, edx1, dy1, edy1 = fp1
                sx2, esx2, sy2, esy2, dx2, edx2, dy2, edy2 = fp2
                fx, ex = xb
                d0 = sy1 - sy2
                e0 = esy1 + esy2 + abs(d0) * _EPS
                m = dx1 * dx2
                em = abs(dx1) * edx2 + abs(dx2) * edx1 + edx1 * edx2 + abs(m) * _EPS
                t0 = d0 * m
                et0 = abs(d0) * em + abs(m) * e0 + e0 * em + abs(t0) * _EPS
                a1 = fx - sx1
                ea1 = ex + esx1 + abs(a1) * _EPS
                p1 = dy1 * a1
                ep1 = abs(dy1) * ea1 + abs(a1) * edy1 + ea1 * edy1 + abs(p1) * _EPS
                t1 = p1 * dx2
                et1 = abs(p1) * edx2 + abs(dx2) * ep1 + ep1 * edx2 + abs(t1) * _EPS
                a2 = fx - sx2
                ea2 = ex + esx2 + abs(a2) * _EPS
                p2 = dy2 * a2
                ep2 = abs(dy2) * ea2 + abs(a2) * edy2 + ea2 * edy2 + abs(p2) * _EPS
                t2 = p2 * dx1
                et2 = abs(p2) * edx1 + abs(dx1) * ep2 + ep2 * edx1 + abs(t2) * _EPS
                s = t0 + t1
                es = et0 + et1 + abs(s) * _EPS
                v = s - t2
                err = (es + et2 + abs(v) * _EPS) * _SLOP + _TINY
                if v > err:
                    STATS.fast_hits += 1
                    return 1
                if -v > err:
                    STATS.fast_hits += 1
                    return -1
    STATS.exact_fallbacks += 1
    a_start = s1.start
    a_end = s1.end
    b_start = s2.start
    b_end = s2.end
    adx = a_end.x - a_start.x
    bdx = b_end.x - b_start.x
    return _sign(
        (a_start.y - b_start.y) * adx * bdx
        + (a_end.y - a_start.y) * (x - a_start.x) * bdx
        - (b_end.y - b_start.y) * (x - b_start.x) * adx
    )


def compare_u_at(segment, h, bound, hb: Ball = None, bb: Ball = None) -> int:
    """Sign of ``segment.u_at(h) - bound`` for a proper line-based segment.

    Division-free via the (positive) apex height:
    ``sign((u0 - b)·h1 + du·h)``.
    """
    if not _exact_only:
        fp = segment._fp
        if fp is not None:
            if hb is None:
                hb = ball(h)
            if hb is not None:
                if bb is None:
                    bb = ball(bound)
                if bb is not None:
                    fu0, eu0, du, edu, fh1, eh1 = fp
                    fh, eh = hb
                    fb, eb = bb
                    d = fu0 - fb
                    ed = eu0 + eb + abs(d) * _EPS
                    t1 = d * fh1
                    et1 = abs(d) * eh1 + abs(fh1) * ed + ed * eh1 + abs(t1) * _EPS
                    t2 = du * fh
                    et2 = abs(du) * eh + abs(fh) * edu + edu * eh + abs(t2) * _EPS
                    v = t1 + t2
                    err = (et1 + et2 + abs(v) * _EPS) * _SLOP + _TINY
                    if v > err:
                        STATS.fast_hits += 1
                        return 1
                    if -v > err:
                        STATS.fast_hits += 1
                        return -1
    STATS.exact_fallbacks += 1
    return _sign(
        (segment.u0 - bound) * segment.h1 + (segment.u1 - segment.u0) * h
    )


def compare_interp(y_left, x_left, y_right, x_right, x, bound,
                   xb: Ball = None, bb: Ball = None) -> int:
    """Sign of the linear interpolation through ``(x_left, y_left)`` and
    ``(x_right, y_right)`` at ``x``, minus ``bound``.

    Requires ``x_right > x_left``; cross-multiplied:
    ``sign((y_left - b)·(x_right - x_left) + (y_right - y_left)·(x - x_left))``.
    Used for G-tree entry keys, whose geometry lives in key tuples rather
    than on segment objects (no per-key coefficient cache).
    """
    if not _exact_only:
        byl = ball(y_left)
        if byl is not None:
            bxl = ball(x_left)
            byr = ball(y_right)
            bxr = ball(x_right)
            if bxl is not None and byr is not None and bxr is not None:
                if xb is None:
                    xb = ball(x)
                if xb is not None:
                    if bb is None:
                        bb = ball(bound)
                    if bb is not None:
                        fyl, eyl = byl
                        fxl, exl = bxl
                        fyr, eyr = byr
                        fxr, exr = bxr
                        fx, ex = xb
                        fb, eb = bb
                        d1 = fyl - fb
                        e1 = eyl + eb + abs(d1) * _EPS
                        w = fxr - fxl
                        ew = exr + exl + abs(w) * _EPS
                        t1 = d1 * w
                        et1 = abs(d1) * ew + abs(w) * e1 + e1 * ew + abs(t1) * _EPS
                        d2 = fyr - fyl
                        e2 = eyr + eyl + abs(d2) * _EPS
                        a = fx - fxl
                        ea = ex + exl + abs(a) * _EPS
                        t2 = d2 * a
                        et2 = abs(d2) * ea + abs(a) * e2 + e2 * ea + abs(t2) * _EPS
                        v = t1 + t2
                        err = (et1 + et2 + abs(v) * _EPS) * _SLOP + _TINY
                        if v > err:
                            STATS.fast_hits += 1
                            return 1
                        if -v > err:
                            STATS.fast_hits += 1
                            return -1
    STATS.exact_fallbacks += 1
    return _sign(
        (y_left - bound) * (x_right - x_left) + (y_right - y_left) * (x - x_left)
    )


def compare_slopes(s1, s2) -> int:
    """Sign of ``slope(s1) - slope(s2)`` for two non-vertical segments:
    ``sign(dy1·dx2 - dy2·dx1)`` (both runs positive)."""
    if not _exact_only:
        fp1 = s1._fp
        fp2 = s2._fp
        if fp1 is not None and fp2 is not None:
            dx1, edx1, dy1, edy1 = fp1[4], fp1[5], fp1[6], fp1[7]
            dx2, edx2, dy2, edy2 = fp2[4], fp2[5], fp2[6], fp2[7]
            t1 = dy1 * dx2
            et1 = abs(dy1) * edx2 + abs(dx2) * edy1 + edy1 * edx2 + abs(t1) * _EPS
            t2 = dy2 * dx1
            et2 = abs(dy2) * edx1 + abs(dx1) * edy2 + edy2 * edx1 + abs(t2) * _EPS
            v = t1 - t2
            err = (et1 + et2 + abs(v) * _EPS) * _SLOP + _TINY
            if v > err:
                STATS.fast_hits += 1
                return 1
            if -v > err:
                STATS.fast_hits += 1
                return -1
    STATS.exact_fallbacks += 1
    return _sign(
        (s1.end.y - s1.start.y) * (s2.end.x - s2.start.x)
        - (s2.end.y - s2.start.y) * (s1.end.x - s1.start.x)
    )
