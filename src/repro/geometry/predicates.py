"""Exact geometric predicates.

All predicates are exact: every sign test is decided correctly (via the
filtered kernel of :mod:`repro.geometry.filtered` — a certified float
fast path with an exact rational fallback).  The central distinction in this library is between
*touching* (allowed in an NCT set) and *crossing* (forbidden):

* two segments **touch** when their intersection is a single point that is
  an endpoint of at least one of them;
* two segments **cross** when they intersect in any other way — a proper
  interior crossing, or a collinear overlap of positive length, or one
  segment's interior point lying on the other's interior... the latter two
  all reduce to "intersecting but not merely touching".
"""

from __future__ import annotations

from .filtered import sign_orientation
from .point import Point
from .segment import Segment


def orientation(a: Point, b: Point, c: Point) -> int:
    """Sign of the cross product (b - a) x (c - a).

    Returns ``1`` for a counter-clockwise turn, ``-1`` for clockwise, and
    ``0`` for collinear points.
    """
    return sign_orientation(a.x, a.y, b.x, b.y, c.x, c.y)


def on_segment(p: Point, s: Segment) -> bool:
    """True when point ``p`` lies on the closed segment ``s``."""
    if orientation(s.start, s.end, p) != 0:
        return False
    return (
        min(s.start.x, s.end.x) <= p.x <= max(s.start.x, s.end.x)
        and min(s.start.y, s.end.y) <= p.y <= max(s.start.y, s.end.y)
    )


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """True when the closed segments share at least one point."""
    o1 = orientation(s1.start, s1.end, s2.start)
    o2 = orientation(s1.start, s1.end, s2.end)
    o3 = orientation(s2.start, s2.end, s1.start)
    o4 = orientation(s2.start, s2.end, s1.end)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(s2.start, s1):
        return True
    if o2 == 0 and on_segment(s2.end, s1):
        return True
    if o3 == 0 and on_segment(s1.start, s2):
        return True
    if o4 == 0 and on_segment(s1.end, s2):
        return True
    return False


def _shared_endpoint_only(s1: Segment, s2: Segment) -> bool:
    """True when the intersection is exactly one point and that point is an
    endpoint of at least one segment."""
    endpoints = []
    for p in (s1.start, s1.end):
        if on_segment(p, s2):
            endpoints.append(p)
    for p in (s2.start, s2.end):
        if on_segment(p, s1) and p not in endpoints:
            endpoints.append(p)
    if len(endpoints) != 1:
        return False
    # A single shared point which is an endpoint of one of the segments.
    # Verify there is no crossing elsewhere: for non-collinear segments a
    # single shared endpoint-point is the whole intersection.
    touch = endpoints[0]
    collinear = (
        orientation(s1.start, s1.end, s2.start) == 0
        and orientation(s1.start, s1.end, s2.end) == 0
    )
    if collinear:
        # Collinear segments sharing exactly one point: they meet end-to-end.
        return touch in (s1.start, s1.end) and touch in (s2.start, s2.end)
    return True


def segments_touch(s1: Segment, s2: Segment) -> bool:
    """True when the segments intersect in exactly one endpoint-anchored point."""
    return segments_intersect(s1, s2) and _shared_endpoint_only(s1, s2)


def segments_cross(s1: Segment, s2: Segment) -> bool:
    """True when the segments intersect in a way an NCT set forbids.

    Crossing means: they intersect, and the intersection is *not* a single
    point that is an endpoint of at least one of the two segments.
    """
    if not segments_intersect(s1, s2):
        return False
    return not _shared_endpoint_only(s1, s2)
