"""Generalized vertical query segments.

The paper's queries are *generalized segments* — a line, a ray, or a segment
— with a fixed direction, taken vertical w.l.o.g. (footnote 1; see
:mod:`repro.geometry.transform` for the reduction from any other fixed
direction).  :class:`VerticalQuery` represents all three kinds: unbounded
ends are ``None``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from .filtered import ball, compare_y_at
from .point import Coordinate, check_coordinate
from .segment import Segment


class VerticalQuery:
    """A vertical generalized segment ``x = x0``, ``ylo <= y <= yhi``.

    ``ylo is None`` means unbounded below; ``yhi is None`` unbounded above.
    A full line has both ends unbounded; a ray exactly one.
    """

    __slots__ = ("x", "ylo", "yhi", "_balls")

    def __init__(
        self,
        x: Coordinate,
        ylo: Optional[Coordinate] = None,
        yhi: Optional[Coordinate] = None,
    ):
        self.x = check_coordinate(x)
        self.ylo = check_coordinate(ylo) if ylo is not None else None
        self.yhi = check_coordinate(yhi) if yhi is not None else None
        if self.ylo is not None and self.yhi is not None and self.ylo > self.yhi:
            raise ValueError(f"empty query: ylo={ylo} > yhi={yhi}")
        self._balls = None

    def balls(self):
        """Cached ``(x, ylo, yhi)`` :func:`~repro.geometry.filtered.ball`\\ s
        for the filtered comparison kernels (``None`` for absent ends)."""
        cached = self._balls
        if cached is None:
            cached = (
                ball(self.x),
                ball(self.ylo) if self.ylo is not None else None,
                ball(self.yhi) if self.yhi is not None else None,
            )
            self._balls = cached
        return cached

    # ------------------------------------------------------------------
    # constructors for the three query kinds
    # ------------------------------------------------------------------
    @classmethod
    def line(cls, x: Coordinate) -> "VerticalQuery":
        """The full vertical line ``x = x0`` (a stabbing query)."""
        return cls(x)

    @classmethod
    def ray_up(cls, x: Coordinate, ylo: Coordinate) -> "VerticalQuery":
        """The upward ray from ``(x, ylo)``."""
        return cls(x, ylo=ylo)

    @classmethod
    def ray_down(cls, x: Coordinate, yhi: Coordinate) -> "VerticalQuery":
        """The downward ray from ``(x, yhi)``."""
        return cls(x, yhi=yhi)

    @classmethod
    def segment(cls, x: Coordinate, ylo: Coordinate, yhi: Coordinate) -> "VerticalQuery":
        """The vertical segment from ``(x, ylo)`` to ``(x, yhi)``."""
        return cls(x, ylo=ylo, yhi=yhi)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """One of ``"line"``, ``"ray"``, ``"segment"``."""
        if self.ylo is None and self.yhi is None:
            return "line"
        if self.ylo is None or self.yhi is None:
            return "ray"
        return "segment"

    @property
    def is_stabbing(self) -> bool:
        """True for a full-line query (the classical stabbing query)."""
        return self.kind == "line"

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def covers_y(self, y: Coordinate) -> bool:
        """True when the point ``(x, y)`` lies on the query."""
        if self.ylo is not None and y < self.ylo:
            return False
        if self.yhi is not None and y > self.yhi:
            return False
        return True

    def y_interval_overlaps(self, lo: Coordinate, hi: Coordinate) -> bool:
        """True when the closed y-interval ``[lo, hi]`` meets the query's."""
        if self.yhi is not None and lo > self.yhi:
            return False
        if self.ylo is not None and hi < self.ylo:
            return False
        return True

    def __eq__(self, other) -> bool:
        if not isinstance(other, VerticalQuery):
            return NotImplemented
        return (self.x, self.ylo, self.yhi) == (other.x, other.ylo, other.yhi)

    def __hash__(self) -> int:
        return hash((self.x, self.ylo, self.yhi))

    def __repr__(self) -> str:
        return f"VerticalQuery(x={self.x!r}, ylo={self.ylo!r}, yhi={self.yhi!r})"


def vs_intersects(segment: Segment, query: VerticalQuery) -> bool:
    """Exact test: does a database segment meet a vertical generalized segment?

    This is the ground-truth predicate used by the brute-force oracle and by
    every engine when filtering candidates.
    """
    x0 = query.x
    if not segment.spans_x(x0):
        return False
    if segment.is_vertical:
        return query.y_interval_overlaps(segment.ymin, segment.ymax)
    xb, lob, hib = query.balls()
    if query.ylo is not None and compare_y_at(segment, x0, query.ylo, xb, lob) < 0:
        return False
    if query.yhi is not None and compare_y_at(segment, x0, query.yhi, xb, hib) > 0:
        return False
    return True


def query_as_segment(query: VerticalQuery, ybound: Coordinate) -> Segment:
    """Materialise a query as a plane segment, clipping unbounded ends.

    ``ybound`` must exceed every |y| in the data set; used by visualisations
    and cross-checks.
    """
    lo = query.ylo if query.ylo is not None else -Fraction(ybound)
    hi = query.yhi if query.yhi is not None else Fraction(ybound)
    return Segment.from_coords(query.x, lo, query.x, hi, label=("query", query.x))
