"""Frame transformations.

Two reductions used throughout the paper:

1.  **Fixed direction → vertical** (footnote 1).  Queries with any fixed
    angular coefficient ``m`` reduce to vertical queries under an exact
    *linear* change of coordinates (a rational shear — we avoid irrational
    rotations entirely).  Linear bijections preserve incidence, so
    non-crossing sets stay non-crossing and query answers transfer verbatim.

2.  **Vertical base line → line-based frame** (Sections 3–4 → Section 2).
    Segments hanging off a vertical base line ``x = c`` on one side are
    line-based segments in the frame ``u = y``, ``h = |x - c|``; a vertical
    query at ``x0`` on that side becomes a constant-height query at
    ``h = |x0 - c|``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from .filtered import ball
from .linebased import HQuery, LineBasedSegment
from .point import Coordinate, Point, check_coordinate
from .query import VerticalQuery
from .segment import Segment


class FixedDirectionFrame:
    """Exact linear map sending direction ``(1, m)`` to the vertical.

    For ``m != 0`` we use ``T(x, y) = (m*x - y, y)``; for ``m == 0``
    (horizontal queries) we use the axis swap ``T(x, y) = (y, x)``.  Both are
    invertible linear maps with rational entries.
    """

    def __init__(self, m: Coordinate):
        self.m = check_coordinate(m)

    def forward_point(self, p: Point) -> Point:
        if self.m == 0:
            return Point(p.y, p.x)
        return Point(self.m * p.x - p.y, p.y)

    def inverse_point(self, p: Point) -> Point:
        if self.m == 0:
            return Point(p.y, p.x)
        # u = m*x - y, v = y  =>  x = (u + v) / m, y = v
        return Point(Fraction(p.x + p.y, 1) / Fraction(self.m), p.y)

    def forward_segment(self, s: Segment) -> Segment:
        return Segment(
            self.forward_point(s.start), self.forward_point(s.end), label=s.label
        )

    def inverse_segment(self, s: Segment) -> Segment:
        return Segment(
            self.inverse_point(s.start), self.inverse_point(s.end), label=s.label
        )

    def forward_query(self, p1: Point, p2: Optional[Point] = None) -> VerticalQuery:
        """Map a query with angular coefficient ``m`` into a vertical query.

        ``p1`` (and optionally ``p2``) are points on the query; with one
        point the query is the full line through it with slope ``m``.
        """
        q1 = self.forward_point(p1)
        if p2 is None:
            return VerticalQuery.line(q1.x)
        q2 = self.forward_point(p2)
        if q1.x != q2.x:
            raise ValueError(
                f"query endpoints {p1!r}, {p2!r} do not have angular "
                f"coefficient {self.m}"
            )
        lo, hi = (q1.y, q2.y) if q1.y <= q2.y else (q2.y, q1.y)
        return VerticalQuery.segment(q1.x, lo, hi)


class VerticalBaseFrame:
    """The line-based frame attached to one side of a vertical base line.

    Parameters
    ----------
    c:
        The x-coordinate of the base line.
    side:
        ``"left"`` — segments with ``x <= c``, ``h = c - x``;
        ``"right"`` — segments with ``x >= c``, ``h = x - c``.
    """

    def __init__(self, c: Coordinate, side: str):
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        self.c = check_coordinate(c)
        self.side = side

    def height_of(self, x: Coordinate) -> Coordinate:
        return self.c - x if self.side == "left" else x - self.c

    def to_line_based(
        self, s: Segment, payload: Optional[Segment] = None
    ) -> LineBasedSegment:
        """Convert a plane segment with one endpoint on ``x = c``.

        The plane segment must lie entirely on this frame's side.  When
        ``s`` is a *fragment* of a longer stored segment, pass the
        original as ``payload`` — the index must report (and rebuild
        from) originals, never frame-local fragments.
        """
        h_start = self.height_of(s.start.x)
        h_end = self.height_of(s.end.x)
        if h_start < 0 or h_end < 0:
            raise ValueError(f"{s!r} extends to the wrong side of x={self.c}")
        if h_start == 0:
            base, apex, h_apex = s.start, s.end, h_end
        elif h_end == 0:
            base, apex, h_apex = s.end, s.start, h_start
        else:
            raise ValueError(f"{s!r} has no endpoint on the base line x={self.c}")
        return LineBasedSegment(
            base.y, apex.y, h_apex,
            payload=payload if payload is not None else s,
            label=("lb", self.side, s.label),
        )

    def to_hquery(self, q: VerticalQuery) -> HQuery:
        """Convert a vertical query on this frame's side."""
        h = self.height_of(q.x)
        if h < 0:
            raise ValueError(f"query x={q.x} is on the wrong side of x={self.c}")
        # The query's coordinates are already checked and ordered and h
        # was just range-checked, so skip HQuery.__init__'s validation.
        hq = HQuery._trusted(h, q.ylo, q.yhi)
        # The u-bounds are the query's y-bounds verbatim, so their filter
        # balls can be shared across every node visit; only ball(h)
        # depends on this frame.
        qb = q.balls()
        hq._balls = (ball(h), qb[1], qb[2])
        return hq
