"""Vectorized page kernels over columnar payload caches.

The PR 3 filter made every *single* comparison cheap; what remains on the
hot path is the Python interpreter driving one comparison per stored
segment per page.  This module removes that loop: a page's payload is
mirrored once into struct-of-arrays columnar form (cached on the
:class:`~repro.iosim.page.Page` itself, invalidated on any write), and
the per-page predicates — ``vs_intersects`` over a leaf page,
``classify`` over a PST node, ``_cmp_key_y`` over a G-tree leaf — run as
one batched kernel per (page, query) pair.

Two kernel tiers share each dispatch point, selected by row count:

* **numpy tier** (``n >= NUMPY_MIN_ROWS``): one array expression per
  comparison over the whole page.  Array-op dispatch costs ~1us per
  ufunc regardless of width, so this tier only wins on wide pages —
  its per-row cost is nearly zero but its fixed cost is ~50 ufunc
  launches.
* **fused tier** (``MIN_ROWS <= n < NUMPY_MIN_ROWS``): a single-pass
  Python loop with every predicate inlined — no per-row function calls,
  no attribute chasing, short-circuits preserved.  Setup (query balls,
  locals) is paid once per page instead of once per row, which beats
  the scalar per-row calls from a handful of rows up.

Exactness contract.  The float expressions here are *verbatim elementwise
replicas* of the scalar filtered kernels in
:mod:`repro.geometry.filtered` — same operations, same order, same
``_EPS``/``_SLOP``/``_TINY`` error accounting — so the certified/
uncertified partition of rows is bit-identical to the scalar code, and a
certified sign is the exact sign by the same forward-error argument
(DESIGN.md §9).  Rows the kernel cannot certify (or whose cached float
coefficients are missing) are resolved by calling the *scalar* predicate
for that row, which performs its own exact fallback and its own
telemetry.  Filter telemetry is therefore preserved exactly: certified
rows are bulk-counted as fast hits only where the scalar code would have
consulted them (short-circuit consumption is mirrored mask-wise), and
fallback rows count themselves.

Control-flow contract.  Kernels never touch the pager or the device —
columns are built from already-fetched page payloads — so the page fetch
sequence, and with it every simulated I/O count, is identical whether
the kernels are enabled, disabled (:func:`set_vectorized`), or
unavailable (no numpy).  ``REPRO_SCALAR_KERNELS=1`` forces the scalar
paths; exact-only mode (``REPRO_EXACT_ONLY``) disables the kernels too,
since they *are* the float fast path.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

from . import filtered
from .filtered import _EPS, _SLOP, _TINY, STATS, ball

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the wheel bakes numpy in
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Below this many rows even the fused loop's per-page setup exceeds the
#: scalar per-row calls it replaces; such pages stay scalar.
MIN_ROWS = 4

#: At and above this many rows the numpy tier's ~50 fixed array-op
#: launches amortize below the fused loop's per-row interpreter cost.
#: On uniform rows the crossover is ~100-190 (intersect/classify), but
#: the fused loop is *data-adaptive*: its exact early exits (the BELOW
#: reach test, the span test) retire most rows of a real page for one
#: cheap compare, while the array expressions pay the full certified
#: filter on every row.  In-engine A/B on the E20 workload puts the
#: realistic crossover past 128-row pages, so the threshold sits at 256
#: — wide scan/sidecar pages vectorize, tree nodes stay fused.
NUMPY_MIN_ROWS = 256

#: Row count at and above which a page's columns are worth mirroring
#: into an arena sidecar (the numpy tier's zero-copy attach path).
SIDECAR_MIN_ROWS = 8

#: Classification codes (:func:`classify_page`), matching the order of
#: the string constants in ``core.linebased.search``.
BELOW, LEFT, HIT, RIGHT = 0, 1, 2, 3


def _env_scalar() -> bool:
    return os.environ.get("REPRO_SCALAR_KERNELS", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


_vectorized = not _env_scalar()


def set_vectorized(flag: bool) -> None:
    """Enable/disable the vectorized kernels (the E20 A/B switch).

    Results and I/O counts are identical either way; only wall-clock
    changes.  The fused tier is pure Python, so the switch works with
    or without numpy (the numpy tier is simply absent without it).
    """
    global _vectorized
    _vectorized = bool(flag)


def vectorized_enabled() -> bool:
    """True when page kernels will actually run (off in exact-only mode)."""
    return _vectorized and not filtered.exact_only_enabled()


def kernel_stats() -> dict:
    """JSON-ready kernel configuration snapshot (for ``io_report()``)."""
    return {
        "have_numpy": HAVE_NUMPY,
        "vectorized": vectorized_enabled(),
        "min_rows": MIN_ROWS,
        "numpy_min_rows": NUMPY_MIN_ROWS,
    }


# ----------------------------------------------------------------------
# per-page column caches
# ----------------------------------------------------------------------
def _cached_columns(page, kind: str, items: Sequence, builder):
    """The page's columnar mirror, built once and reused until a write.

    ``page`` may be ``None`` (no cache host — e.g. the stab-filter's
    in-memory candidate list); the columns are then built per call.
    """
    if page is not None:
        cached = getattr(page, "cols", None)
        if cached is not None and cached[0] == kind and cached[1].n == len(items):
            return cached[1]
    cols = builder(items)
    if page is not None:
        page.cols = (kind, cols)
    return cols


class SegColumns:
    """Struct-of-arrays mirror of a page of plane :class:`Segment`\\ s.

    Eight columns are the rows' cached ``segment_fp`` tuples; the
    derived ``xmax``/``ey`` balls (sound by triangle inequality, used
    only for the plain span/overlap compares that carry no telemetry)
    avoid re-deriving ``ball()`` per endpoint.  ``valid`` marks rows
    whose fast path exists at all; ``vertical`` is the exact
    ``is_vertical`` flag, evaluated once at build time.
    """

    __slots__ = ("n", "sx", "esx", "sy", "esy", "dx", "edx", "dy", "edy",
                 "xmax", "exmax", "ey", "eey", "valid", "vertical")

    def __init__(self, n, sx, esx, sy, esy, dx, edx, dy, edy,
                 xmax, exmax, ey, eey, valid, vertical):
        self.n = n
        self.sx, self.esx, self.sy, self.esy = sx, esx, sy, esy
        self.dx, self.edx, self.dy, self.edy = dx, edx, dy, edy
        self.xmax, self.exmax, self.ey, self.eey = xmax, exmax, ey, eey
        self.valid = valid
        self.vertical = vertical

    @classmethod
    def build(cls, items: Sequence) -> "SegColumns":
        n = len(items)
        zeros8 = (0.0,) * 8
        mat = np.array([s._fp if s._fp is not None else zeros8 for s in items],
                       dtype=np.float64).reshape(n, 8)
        valid = np.array([s._fp is not None for s in items], dtype=bool)
        vertical = np.array([s.is_vertical for s in items], dtype=bool)
        sx, esx = mat[:, 0], mat[:, 1]
        sy, esy = mat[:, 2], mat[:, 3]
        dx, edx = mat[:, 4], mat[:, 5]
        dy, edy = mat[:, 6], mat[:, 7]
        with np.errstate(over="ignore", invalid="ignore"):
            xmax = sx + dx
            exmax = esx + edx + np.abs(xmax) * _EPS
            ey = sy + dy
            eey = esy + edy + np.abs(ey) * _EPS
        return cls(n, sx, esx, sy, esy, dx, edx, dy, edy,
                   xmax, exmax, ey, eey, valid, vertical)

    @classmethod
    def from_arrays(cls, mat, valid, vertical) -> "SegColumns":
        """Attach over an existing ``(n, 8)`` fp matrix (arena decode)."""
        n = mat.shape[0]
        sx, esx = mat[:, 0], mat[:, 1]
        sy, esy = mat[:, 2], mat[:, 3]
        dx, edx = mat[:, 4], mat[:, 5]
        dy, edy = mat[:, 6], mat[:, 7]
        with np.errstate(over="ignore", invalid="ignore"):
            xmax = sx + dx
            exmax = esx + edx + np.abs(xmax) * _EPS
            ey = sy + dy
            eey = esy + edy + np.abs(ey) * _EPS
        return cls(n, sx, esx, sy, esy, dx, edx, dy, edy,
                   xmax, exmax, ey, eey, valid, vertical)

    def fp_matrix(self):
        """The raw ``(n, 8)`` fp matrix (arena encode)."""
        return np.column_stack((self.sx, self.esx, self.sy, self.esy,
                                self.dx, self.edx, self.dy, self.edy))

    def take(self, idx) -> "SegColumns":
        """Row-subset gather (label-deduped / bbox-prefiltered scans)."""
        return SegColumns(
            len(idx), self.sx[idx], self.esx[idx], self.sy[idx],
            self.esy[idx], self.dx[idx], self.edx[idx], self.dy[idx],
            self.edy[idx], self.xmax[idx], self.exmax[idx], self.ey[idx],
            self.eey[idx], self.valid[idx], self.vertical[idx])


class LBColumns:
    """Columns of a PST items page of :class:`LineBasedSegment`\\ s
    (the rows' cached ``lb_fp`` tuples)."""

    __slots__ = ("n", "u0", "eu0", "du", "edu", "h1", "eh1", "valid")

    def __init__(self, n, u0, eu0, du, edu, h1, eh1, valid):
        self.n = n
        self.u0, self.eu0 = u0, eu0
        self.du, self.edu = du, edu
        self.h1, self.eh1 = h1, eh1
        self.valid = valid

    @classmethod
    def build(cls, items: Sequence) -> "LBColumns":
        n = len(items)
        zeros6 = (0.0,) * 6
        mat = np.array([s._fp if s._fp is not None else zeros6 for s in items],
                       dtype=np.float64).reshape(n, 6)
        valid = np.array([s._fp is not None for s in items], dtype=bool)
        return cls(n, mat[:, 0], mat[:, 1], mat[:, 2], mat[:, 3],
                   mat[:, 4], mat[:, 5], valid)

    @classmethod
    def from_arrays(cls, mat, valid) -> "LBColumns":
        return cls(mat.shape[0], mat[:, 0], mat[:, 1], mat[:, 2],
                   mat[:, 3], mat[:, 4], mat[:, 5], valid)

    def fp_matrix(self):
        return np.column_stack((self.u0, self.eu0, self.du, self.edu,
                                self.h1, self.eh1))


class GKeyColumns:
    """Columns of a G-tree multislab leaf: balls of each entry key's
    ``(y_left, x_left, y_right, x_right)`` geometry."""

    __slots__ = ("n", "yl", "eyl", "xl", "exl", "yr", "eyr", "xr", "exr",
                 "valid")

    def __init__(self, n, yl, eyl, xl, exl, yr, eyr, xr, exr, valid):
        self.n = n
        self.yl, self.eyl = yl, eyl
        self.xl, self.exl = xl, exl
        self.yr, self.eyr = yr, eyr
        self.xr, self.exr = xr, exr
        self.valid = valid

    @classmethod
    def build(cls, items: Sequence) -> "GKeyColumns":
        n = len(items)
        rows: List[Tuple[float, ...]] = []
        valid_rows: List[bool] = []
        zeros8 = (0.0,) * 8
        for key, _entry in items:
            _y_mid, y_left, x_left, y_right, x_right = key
            byl = ball(y_left)
            bxl = ball(x_left)
            byr = ball(y_right)
            bxr = ball(x_right)
            if byl is None or bxl is None or byr is None or bxr is None:
                rows.append(zeros8)
                valid_rows.append(False)
            else:
                rows.append((byl[0], byl[1], bxl[0], bxl[1],
                             byr[0], byr[1], bxr[0], bxr[1]))
                valid_rows.append(True)
        mat = np.array(rows, dtype=np.float64).reshape(n, 8)
        valid = np.array(valid_rows, dtype=bool)
        return cls(n, mat[:, 0], mat[:, 1], mat[:, 2], mat[:, 3],
                   mat[:, 4], mat[:, 5], mat[:, 6], mat[:, 7], valid)

    @classmethod
    def from_arrays(cls, mat, valid) -> "GKeyColumns":
        return cls(mat.shape[0], mat[:, 0], mat[:, 1], mat[:, 2], mat[:, 3],
                   mat[:, 4], mat[:, 5], mat[:, 6], mat[:, 7], valid)

    def fp_matrix(self):
        return np.column_stack((self.yl, self.eyl, self.xl, self.exl,
                                self.yr, self.eyr, self.xr, self.exr))


def segment_columns(page, items: Sequence) -> "SegColumns":
    return _cached_columns(page, "seg", items, SegColumns.build)


def lb_columns(page, items: Sequence) -> "LBColumns":
    return _cached_columns(page, "lb", items, LBColumns.build)


def gkey_columns(page, items: Sequence) -> "GKeyColumns":
    return _cached_columns(page, "gkey", items, GKeyColumns.build)


# ----------------------------------------------------------------------
# certified plain compares (no telemetry — mirror exact `<`/`>` checks)
# ----------------------------------------------------------------------
def _plain_sign(d, err_terms):
    """(signs, resolved) of a plain exact compare evaluated in floats.

    ``d`` approximates the true difference within ``err_terms``; the sign
    is certified where ``|d|`` clears the (slop-padded) radius.  Plain
    compares carry no filter telemetry in the scalar code, so none here.
    """
    err = (err_terms + np.abs(d) * _EPS) * _SLOP + _TINY
    return d, np.abs(d) > err


# ----------------------------------------------------------------------
# vs_intersects over a page of plane segments
# ----------------------------------------------------------------------
def intersect_hits_py(items: Sequence, query) -> Optional[list]:
    """Fused-tier ``[s for s in items if vs_intersects(s, query)]``.

    One pass, every predicate inlined: the exact span/vertical tests and
    a verbatim replica of ``filtered.compare_y_at``'s float expressions
    (same operations, same order), with the scalar short-circuits
    preserved row by row.  Certified compares are tallied as fast hits
    exactly where the scalar code would have counted them; uncertified
    rows fall through to the scalar ``compare_y_at``, which performs its
    own exact fallback and telemetry.  Returns ``None`` when the query
    has no usable float bounds (callers then run the scalar loop).
    """
    xb, lob, hib = query.balls()
    if xb is None:
        return None
    ylo, yhi = query.ylo, query.yhi
    if ylo is not None and lob is None:
        return None
    if yhi is not None and hib is None:
        return None
    x0 = query.x
    fx, ex = xb
    fbl = ebl = fbh = ebh = 0.0
    if ylo is not None:
        fbl, ebl = lob
    if yhi is not None:
        fbh, ebh = hib
    compare = filtered.compare_y_at
    eps, slop, tiny = _EPS, _SLOP, _TINY
    abs_ = abs  # local binding: the loop calls it ~20x per row
    hits: list = []
    ap = hits.append
    fast = 0
    for s in items:
        st = s.start
        en = s.end
        if not (st.x <= x0 <= en.x):  # spans_x, exact
            continue
        if st.x == en.x:
            # Vertical: exact y-interval overlap (normalisation makes
            # ymin = start.y, ymax = end.y for a vertical segment).
            if yhi is not None and st.y > yhi:
                continue
            if ylo is not None and en.y < ylo:
                continue
            ap(s)
            continue
        if ylo is None and yhi is None:
            ap(s)
            continue
        fp = s._fp
        if fp is None:
            if ylo is not None and compare(s, x0, ylo, xb, lob) < 0:
                continue
            if yhi is not None and compare(s, x0, yhi, xb, hib) > 0:
                continue
            ap(s)
            continue
        fsx, esx, fsy, esy, dx, edx, dy, edy = fp
        # compare_y_at's second product is bound-independent; computing
        # it once per row is bit-identical (the terms are independent).
        d2 = fx - fsx
        e2 = ex + esx + abs_(d2) * eps
        t2 = dy * d2
        et2 = abs_(dy) * e2 + abs_(d2) * edy + e2 * edy + abs_(t2) * eps
        if ylo is not None:
            d1 = fsy - fbl
            e1 = esy + ebl + abs_(d1) * eps
            t1 = d1 * dx
            et1 = abs_(d1) * edx + abs_(dx) * e1 + e1 * edx + abs_(t1) * eps
            v = t1 + t2
            err = (et1 + et2 + abs_(v) * eps) * slop + tiny
            if -v > err:          # y_at(x) < ylo -> miss
                fast += 1
                continue
            if v > err:
                fast += 1
            elif compare(s, x0, ylo, xb, lob) < 0:
                continue
        if yhi is not None:
            d1 = fsy - fbh
            e1 = esy + ebh + abs_(d1) * eps
            t1 = d1 * dx
            et1 = abs_(d1) * edx + abs_(dx) * e1 + e1 * edx + abs_(t1) * eps
            v = t1 + t2
            err = (et1 + et2 + abs_(v) * eps) * slop + tiny
            if v > err:           # y_at(x) > yhi -> miss
                fast += 1
                continue
            if -v > err:
                fast += 1
            elif compare(s, x0, yhi, xb, hib) > 0:
                continue
        ap(s)
    STATS.fast_hits += fast
    return hits


def intersect_rows(items: Sequence, query, cols: Optional["SegColumns"],
                   ) -> Optional[Any]:
    """numpy-tier boolean mask of ``vs_intersects(s, query)`` over ``items``.

    Returns ``None`` when the kernels are off or the query has no usable
    float bounds (callers then run the scalar loop or the fused tier).
    Results, and the exact-arithmetic fallback/telemetry counts, match
    the scalar loop bit for bit: certified rows are bulk-counted only
    for the compares the scalar short-circuit would have consumed, and
    every uncertified row is resolved by the scalar predicate.
    """
    if not vectorized_enabled() or cols is None:
        return None
    n = len(items)
    if n != cols.n:
        return None
    xb, lob, hib = query.balls()
    if xb is None:
        return None
    if query.ylo is not None and lob is None:
        return None
    if query.yhi is not None and hib is None:
        return None
    from .query import vs_intersects

    fx, ex = xb
    x0 = query.x
    valid = cols.valid
    with np.errstate(over="ignore", invalid="ignore"):
        # --- spans_x: xmin <= x <= xmax (plain compares) ---------------
        d_lo, r_lo = _plain_sign(fx - cols.sx, ex + cols.esx)
        d_hi, r_hi = _plain_sign(cols.xmax - fx, cols.exmax + ex)
        r_lo = r_lo & valid
        r_hi = r_hi & valid
        spans = np.zeros(n, dtype=bool)
        spans_known = (r_lo & (d_lo < 0)) | (r_hi & (d_hi < 0))  # certainly out
        inside = r_lo & (d_lo > 0) & r_hi & (d_hi > 0)
        spans[inside] = True
        spans_known |= inside
        for i in np.flatnonzero(~spans_known):
            spans[i] = items[i].spans_x(x0)  # exact, no telemetry

        result = np.zeros(n, dtype=bool)
        vertical = cols.vertical & spans
        if vertical.any():
            # y_interval_overlaps (plain compares).  Normalisation makes
            # ymin = start.y, ymax = end.y for a vertical segment.
            ok = np.ones(n, dtype=bool)
            known = np.ones(n, dtype=bool)
            if query.yhi is not None:
                fbh, ebh = hib
                d, r = _plain_sign(cols.sy - fbh, cols.esy + ebh)
                r = r & valid
                ok &= ~(r & (d > 0))          # ymin > yhi -> miss
                known &= r
            if query.ylo is not None:
                fbl, ebl = lob
                d, r = _plain_sign(fbl - cols.ey, cols.eey + ebl)
                r = r & valid
                ok &= ~(r & (d > 0))          # ymax < ylo -> miss
                known &= r
            result[vertical & known] = ok[vertical & known]
            for i in np.flatnonzero(vertical & ~known):
                s = items[i]
                result[i] = query.y_interval_overlaps(s.ymin, s.ymax)

        consulted = spans & ~cols.vertical
        if not consulted.any():
            return result
        if query.ylo is None and query.yhi is None:
            result |= consulted
            return result

        # --- compare_y_at, verbatim replica of filtered.compare_y_at ---
        # The second product is bound-independent: shared by both ends.
        d2 = fx - cols.sx
        e2 = ex + cols.esx + np.abs(d2) * _EPS
        t2 = cols.dy * d2
        et2 = (np.abs(cols.dy) * e2 + np.abs(d2) * cols.edy + e2 * cols.edy
               + np.abs(t2) * _EPS)

        def y_sign(bball):
            fb, eb = bball
            d1 = cols.sy - fb
            e1 = cols.esy + eb + np.abs(d1) * _EPS
            t1 = d1 * cols.dx
            et1 = (np.abs(d1) * cols.edx + np.abs(cols.dx) * e1 + e1 * cols.edx
                   + np.abs(t1) * _EPS)
            v = t1 + t2
            err = (et1 + et2 + np.abs(v) * _EPS) * _SLOP + _TINY
            pos = v > err
            neg = -v > err
            return pos, neg, (pos | neg) & valid

        alive = consulted.copy()
        if query.ylo is not None:
            pos, neg, resolved = y_sign(lob)
            certified = consulted & resolved
            STATS.fast_hits += int(np.count_nonzero(certified))
            alive &= ~(certified & neg)  # y_at(x) < ylo -> miss
            for i in np.flatnonzero(consulted & ~resolved):
                if filtered.compare_y_at(items[i], x0, query.ylo, xb, lob) < 0:
                    alive[i] = False
        if query.yhi is not None:
            consulted_hi = alive
            pos, neg, resolved = y_sign(hib)
            certified = consulted_hi & resolved
            STATS.fast_hits += int(np.count_nonzero(certified))
            alive = alive & ~(certified & pos)  # y_at(x) > yhi -> miss
            for i in np.flatnonzero(consulted_hi & ~resolved):
                if filtered.compare_y_at(items[i], x0, query.yhi, xb, hib) > 0:
                    alive[i] = False
        result |= alive
        return result


def page_intersect_rows(page, query, items: Optional[Sequence] = None
                        ) -> Optional[Any]:
    """:func:`intersect_rows` with the columns cached on ``page``."""
    if items is None:
        items = page.items
    if not vectorized_enabled() or not HAVE_NUMPY or len(items) < MIN_ROWS:
        return None
    return intersect_rows(items, query, segment_columns(page, items))


def page_query_hits(page, query, items: Optional[Sequence] = None) -> list:
    """``[s for s in items if vs_intersects(s, query)]``, kernelized.

    The drop-in form of every engine's leaf scan: the numpy tier on wide
    pages, the fused loop on narrow ones, the original scalar
    comprehension otherwise.
    """
    if items is None:
        items = page.items
    n = len(items)
    if vectorized_enabled() and n >= MIN_ROWS:
        if HAVE_NUMPY and n >= NUMPY_MIN_ROWS:
            mask = intersect_rows(items, query, segment_columns(page, items))
            if mask is not None:
                return [items[int(i)] for i in np.flatnonzero(mask)]
        hits = intersect_hits_py(items, query)
        if hits is not None:
            return hits
    from .query import vs_intersects

    return [s for s in items if vs_intersects(s, query)]


def subset_query_hits(page, query, idx: Sequence[int],
                      items: Optional[Sequence] = None) -> Optional[list]:
    """Hits among ``items[i] for i in idx`` (row order), or ``None``.

    Serves the scans that prefilter rows before the geometric test (the
    grid's label dedup, the R-tree's bbox check): the kernel runs on the
    gathered subset only — exactly the rows the scalar loop would have
    compared.  On the numpy tier the full page columns stay cached and
    the subset is a row gather.
    """
    if not vectorized_enabled() or len(idx) < MIN_ROWS:
        return None
    if items is None:
        items = page.items
    if HAVE_NUMPY and len(idx) >= NUMPY_MIN_ROWS:
        cols = segment_columns(page, items)
        if cols.n == len(items):
            sub_items = [items[i] for i in idx]
            mask = intersect_rows(sub_items, query,
                                  cols.take(np.asarray(idx, dtype=np.intp)))
            if mask is not None:
                return [sub_items[int(i)] for i in np.flatnonzero(mask)]
            return None
    return intersect_hits_py([items[i] for i in idx], query)


def list_query_hits(items: Sequence, query) -> Optional[list]:
    """Hits among an in-memory segment list (no page to host the cache —
    the stab-filter's already-fetched candidates).  numpy-tier columns
    are built per call straight from the segments' cached fp tuples, so
    the build is one array construction, not per-row arithmetic."""
    n = len(items)
    if not vectorized_enabled() or n < MIN_ROWS:
        return None
    if HAVE_NUMPY and n >= NUMPY_MIN_ROWS:
        mask = intersect_rows(items, query, SegColumns.build(items))
        if mask is not None:
            return [items[int(i)] for i in np.flatnonzero(mask)]
        return None
    return intersect_hits_py(items, query)


def rtree_subset_hits(page, query, idx: Sequence[int],
                      items: Optional[Sequence] = None) -> Optional[list]:
    """:func:`subset_query_hits` for R-tree leaves, whose rows are
    ``(bbox, segment)`` tuples (``idx`` holds the bbox-overlap survivors)."""
    if not vectorized_enabled() or len(idx) < MIN_ROWS:
        return None
    if items is None:
        items = page.items
    if HAVE_NUMPY and len(idx) >= NUMPY_MIN_ROWS:
        cols = _cached_columns(
            page, "rtree-seg", items,
            lambda rows: SegColumns.build([s for _b, s in rows]))
        if cols.n == len(items):
            sub_items = [items[i][1] for i in idx]
            mask = intersect_rows(sub_items, query,
                                  cols.take(np.asarray(idx, dtype=np.intp)))
            if mask is not None:
                return [sub_items[int(i)] for i in np.flatnonzero(mask)]
            return None
    return intersect_hits_py([items[i][1] for i in idx], query)


# ----------------------------------------------------------------------
# PST classify over a node's items page
# ----------------------------------------------------------------------
def classify_summary_py(items: Sequence, query
                        ) -> Optional[Tuple[list, Optional[int],
                                            Optional[int]]]:
    """Fused-tier ``(hit_rows, last_left_row, first_right_row)``.

    A single-pass replica of the scalar ``classify`` over a whole page:
    the exact reach-height test, then ``filtered.compare_u_at``'s float
    expressions inlined verbatim for each present bound, with the
    scalar short-circuits (BELOW consumes no window compare, LEFT one)
    preserved row by row.  Certified compares are bulk-tallied as fast
    hits; uncertified rows fall through to the scalar ``compare_u_at``
    (which counts itself).  Only HIT rows and the two boundary
    witnesses are materialised — exactly what the PST search consumes.
    Returns ``None`` when the query has no usable float bounds.
    """
    hb, lob, hib = query.balls()
    if hb is None:
        return None
    ulo, uhi = query.ulo, query.uhi
    if ulo is not None and lob is None:
        return None
    if uhi is not None and hib is None:
        return None
    fh, eh = hb
    afh = abs(fh)
    fbl = ebl = fbh = ebh = 0.0
    if ulo is not None:
        fbl, ebl = lob
    if uhi is not None:
        fbh, ebh = hib
    h = query.h
    compare = filtered.compare_u_at
    eps, slop, tiny = _EPS, _SLOP, _TINY
    abs_ = abs  # local binding: the loop calls it ~20x per row
    hit_rows: list = []
    ap = hit_rows.append
    last_left = first_right = None
    fast = 0
    i = -1
    for s in items:
        i += 1
        if s.h1 < h:              # BELOW: no witness, exact compare
            continue
        fp = s._fp
        if fp is None:
            if ulo is not None and compare(s, h, ulo, hb, lob) < 0:
                last_left = i
            elif uhi is not None and compare(s, h, uhi, hb, hib) > 0:
                if first_right is None:
                    first_right = i
            else:
                ap(i)
            continue
        if ulo is None and uhi is None:
            ap(i)
            continue
        u0, eu0, du, edu, h1, eh1 = fp
        # compare_u_at's second product is bound-independent; computing
        # it once per row is bit-identical (the terms are independent).
        t2 = du * fh
        et2 = abs_(du) * eh + afh * edu + edu * eh + abs_(t2) * eps
        if ulo is not None:
            d0 = u0 - fbl
            ed = eu0 + ebl + abs_(d0) * eps
            t1 = d0 * h1
            et1 = abs_(d0) * eh1 + abs_(h1) * ed + ed * eh1 + abs_(t1) * eps
            v = t1 + t2
            err = (et1 + et2 + abs_(v) * eps) * slop + tiny
            if -v > err:          # u(h) < ulo -> passes left
                fast += 1
                last_left = i
                continue
            if v > err:
                fast += 1
            elif compare(s, h, ulo, hb, lob) < 0:
                last_left = i
                continue
        if uhi is not None:
            d0 = u0 - fbh
            ed = eu0 + ebh + abs_(d0) * eps
            t1 = d0 * h1
            et1 = abs_(d0) * eh1 + abs_(h1) * ed + ed * eh1 + abs_(t1) * eps
            v = t1 + t2
            err = (et1 + et2 + abs_(v) * eps) * slop + tiny
            if v > err:           # u(h) > uhi -> passes right
                fast += 1
                if first_right is None:
                    first_right = i
                continue
            if -v > err:
                fast += 1
            elif compare(s, h, uhi, hb, hib) > 0:
                if first_right is None:
                    first_right = i
                continue
        ap(i)
    STATS.fast_hits += fast
    return hit_rows, last_left, first_right


def classify_rows(items: Sequence, query, cols: Optional["LBColumns"]
                  ) -> Optional[Any]:
    """numpy-tier ``int8`` codes (:data:`BELOW`/:data:`LEFT`/:data:`HIT`/
    :data:`RIGHT`) matching ``classify(s, query)`` row-wise, or ``None``
    (scalar path).

    Mirrors the scalar short-circuit for telemetry: BELOW rows consume
    no window compare, LEFT rows one, the rest two (present bounds
    permitting); certified consumption is bulk-counted, uncertified rows
    re-run the scalar ``compare_u_at``.
    """
    if not vectorized_enabled() or cols is None:
        return None
    n = len(items)
    if n != cols.n:
        return None
    hb, lob, hib = query.balls()
    if hb is None:
        return None
    if query.ulo is not None and lob is None:
        return None
    if query.uhi is not None and hib is None:
        return None
    fh, eh = hb
    h = query.h
    valid = cols.valid
    with np.errstate(over="ignore", invalid="ignore"):
        # --- below: h1 < h (plain compare) -----------------------------
        d, resolved = _plain_sign(fh - cols.h1, eh + cols.eh1)
        resolved = resolved & valid
        below = resolved & (d > 0)
        for i in np.flatnonzero(~resolved):
            if items[i].h1 < h:
                below[i] = True
        codes = np.full(n, HIT, dtype=np.int8)
        codes[below] = BELOW
        reach = ~below
        if not reach.any() or (query.ulo is None and query.uhi is None):
            return codes

        # --- compare_u_at, verbatim replica ----------------------------
        # t2 = du*h is bound-independent: shared by both window tests.
        t2 = cols.du * fh
        et2 = (np.abs(cols.du) * eh + abs(fh) * cols.edu + cols.edu * eh
               + np.abs(t2) * _EPS)

        def u_sign(bball):
            fb, eb = bball
            d0 = cols.u0 - fb
            ed = cols.eu0 + eb + np.abs(d0) * _EPS
            t1 = d0 * cols.h1
            et1 = (np.abs(d0) * cols.eh1 + np.abs(cols.h1) * ed + ed * cols.eh1
                   + np.abs(t1) * _EPS)
            v = t1 + t2
            err = (et1 + et2 + np.abs(v) * _EPS) * _SLOP + _TINY
            pos = v > err
            neg = -v > err
            return pos, neg, (pos | neg) & valid

        if query.ulo is not None:
            pos, neg, resolved = u_sign(lob)
            certified = reach & resolved
            STATS.fast_hits += int(np.count_nonzero(certified))
            left = certified & neg
            for i in np.flatnonzero(reach & ~resolved):
                if filtered.compare_u_at(items[i], h, query.ulo, hb, lob) < 0:
                    left[i] = True
            codes[left] = LEFT
            reach = reach & ~left
        if query.uhi is not None and reach.any():
            pos, neg, resolved = u_sign(hib)
            certified = reach & resolved
            STATS.fast_hits += int(np.count_nonzero(certified))
            right = certified & pos
            for i in np.flatnonzero(reach & ~resolved):
                if filtered.compare_u_at(items[i], h, query.uhi, hb, hib) > 0:
                    right[i] = True
            codes[right] = RIGHT
        return codes


def page_classify_rows(page, query, items: Optional[Sequence] = None
                       ) -> Optional[Any]:
    """numpy-tier :func:`classify_rows` with the columns cached on
    ``page`` (kept for direct kernel tests; engines use
    :func:`page_classify_summary`)."""
    if items is None:
        items = page.items
    if not vectorized_enabled() or not HAVE_NUMPY or len(items) < MIN_ROWS:
        return None
    return classify_rows(items, query, lb_columns(page, items))


def page_classify_summary(page, query, items: Optional[Sequence] = None
                          ) -> Optional[Tuple[list, Optional[int],
                                              Optional[int]]]:
    """``(hit_rows, last_left_row, first_right_row)`` for one node page.

    The shape the PST search actually consumes: HIT row indices in
    storage order plus the page's two tightest witnesses (items are
    sorted by base key, so the last LEFT row and the first RIGHT row
    carry the same final bounds as absorbing every non-hit row).
    Dispatches numpy / fused by row count; ``None`` means scalar path.
    """
    if items is None:
        items = page.items
    n = len(items)
    if not vectorized_enabled() or n < MIN_ROWS:
        return None
    if HAVE_NUMPY and n >= NUMPY_MIN_ROWS:
        codes = classify_rows(items, query,
                              lb_columns(page, items) if page is not None
                              else LBColumns.build(items))
        if codes is not None:
            hit_rows = [int(i) for i in np.flatnonzero(codes == HIT)]
            left_rows = np.flatnonzero(codes == LEFT)
            right_rows = np.flatnonzero(codes == RIGHT)
            return (hit_rows,
                    int(left_rows[-1]) if left_rows.size else None,
                    int(right_rows[0]) if right_rows.size else None)
        return None
    return classify_summary_py(items, query)


# ----------------------------------------------------------------------
# G-tree key comparisons over a multislab leaf
# ----------------------------------------------------------------------
def gkey_sign_table(page, items: Sequence, x, bound, xb, bb
                    ) -> Optional[Tuple[Any, Any, Any]]:
    """Per-row ``_cmp_key_y(key, x, bound)`` signs for a whole leaf.

    Returns ``(signs, resolved, interp)`` — ``int8`` signs valid where
    ``resolved``; ``interp`` marks rows decided through the (telemetry-
    counted) interpolation kernel rather than a clamped plain compare.
    Telemetry is charged by the *consumer* (the scan walks rows in list
    order and may break early), so this function counts nothing.
    Returns ``None`` when vectorization is off or inputs lack balls.
    """
    if not vectorized_enabled() or not HAVE_NUMPY or xb is None:
        return None
    n = len(items)
    if n < MIN_ROWS:
        return None
    cols = gkey_columns(page, items)
    if cols.n != n:
        return None
    fx, ex = xb
    valid = cols.valid
    with np.errstate(over="ignore", invalid="ignore"):
        # Clamp decisions: x <= x_left / x >= x_right (plain compares).
        dl, rl = _plain_sign(cols.xl - fx, cols.exl + ex)
        dr, rr = _plain_sign(fx - cols.xr, cols.exr + ex)
        left_clamp = rl & (dl > 0)
        strict_inside = rl & (dl < 0) & rr & (dr < 0)
        right_clamp = rl & (dl < 0) & rr & (dr > 0)
        clamp_known = (left_clamp | right_clamp | strict_inside) & valid

        signs = np.zeros(n, dtype=np.int8)
        resolved = np.zeros(n, dtype=bool)
        interp = np.zeros(n, dtype=bool)

        if bb is not None:
            fb, eb = bb
            # Clamped rows: plain endpoint-vs-bound compare.
            for clamp_mask, fy, ey in ((left_clamp, cols.yl, cols.eyl),
                                       (right_clamp, cols.yr, cols.eyr)):
                d, r = _plain_sign(fy - fb, ey + eb)
                m = clamp_mask & clamp_known & r
                signs[m] = np.sign(d[m]).astype(np.int8)
                resolved |= m
            # Interpolating rows: verbatim replica of compare_interp.
            d1 = cols.yl - fb
            e1 = cols.eyl + eb + np.abs(d1) * _EPS
            w = cols.xr - cols.xl
            ew = cols.exr + cols.exl + np.abs(w) * _EPS
            t1 = d1 * w
            et1 = (np.abs(d1) * ew + np.abs(w) * e1 + e1 * ew
                   + np.abs(t1) * _EPS)
            d2 = cols.yr - cols.yl
            e2 = cols.eyr + cols.eyl + np.abs(d2) * _EPS
            a = fx - cols.xl
            ea = ex + cols.exl + np.abs(a) * _EPS
            t2 = d2 * a
            et2 = (np.abs(d2) * ea + np.abs(a) * e2 + e2 * ea
                   + np.abs(t2) * _EPS)
            v = t1 + t2
            err = (et1 + et2 + np.abs(v) * _EPS) * _SLOP + _TINY
            pos = v > err
            neg = -v > err
            m = strict_inside & clamp_known & (pos | neg)
            signs[m & pos] = 1
            signs[m & neg] = -1
            resolved |= m
            interp[m] = True
    return signs, resolved, interp
