"""GIS-style map-layer workloads.

The paper motivates segment databases with GIS maps "stored as collections
of NCT segments".  Two synthetic stand-ins:

* :func:`delaunay_edges` — edges of a Delaunay triangulation over random
  integer sites (via scipy): a classic proxy for road/parcel networks;
  segments touch at shared vertices and never cross.
* :func:`monotone_polylines` — stacked x-monotone polylines (contour lines /
  river layers) confined to disjoint horizontal bands.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..geometry import Segment


def _rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def delaunay_edges(
    n_sites: int,
    extent: int = 10**6,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Segment]:
    """Delaunay-triangulation edges over ``n_sites`` random integer sites.

    Returns roughly ``3 * n_sites`` segments.  Sites are drawn from a huge
    integer extent so qhull's floating-point triangulation is exact for
    them (degeneracies are astronomically unlikely and the output can be
    checked with :func:`repro.geometry.validate_nct`).
    """
    from scipy.spatial import Delaunay  # imported lazily; scipy is optional

    rng = _rng(seed, rng)
    sites = set()
    while len(sites) < n_sites:
        sites.add((rng.randint(0, extent), rng.randint(0, extent)))
    points = sorted(sites)
    tri = Delaunay(points)
    edges = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        edges.add((min(a, b), max(a, b)))
        edges.add((min(b, c), max(b, c)))
        edges.add((min(a, c), max(a, c)))
    segments = []
    for i, (a, b) in enumerate(sorted(edges)):
        (x1, y1), (x2, y2) = points[a], points[b]
        segments.append(Segment.from_coords(x1, y1, x2, y2, label=("d", i)))
    return segments


def monotone_polylines(
    n_lines: int,
    points_per_line: int = 50,
    band_height: int = 1000,
    step_x: int = 100,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Segment]:
    """``n_lines`` x-monotone polylines in disjoint horizontal bands.

    Each polyline contributes ``points_per_line - 1`` touching segments;
    distinct polylines never meet.
    """
    rng = _rng(seed, rng)
    segments = []
    for line in range(n_lines):
        y_base = line * band_height
        x = 0
        y = y_base + rng.randint(1, band_height - 2)
        for j in range(points_per_line - 1):
            x_next = x + rng.randint(1, step_x)
            y_next = y_base + rng.randint(1, band_height - 2)
            if (x_next, y_next) == (x, y):
                x_next += 1
            segments.append(
                Segment.from_coords(x, y, x_next, y_next, label=("p", line, j))
            )
            x, y = x_next, y_next
    return segments
