"""Temporal-database workload.

The paper lists temporal databases [13] among segment-database
applications: a tuple version valid over ``[t_from, t_to]`` with a (possibly
drifting) attribute value is a plane segment in (time, value) space.  A VS
query at time ``t`` with a value window is "which versions were valid at
time ``t`` with value in the window" — exactly a vertical-segment query.

:func:`version_history` lays out per-key version chains: consecutive
versions of a key touch at their transition instant; distinct keys live in
disjoint value bands, so the set is NCT by construction.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..geometry import Segment


def version_history(
    n_keys: int,
    versions_per_key: int = 20,
    band: int = 1000,
    max_duration: int = 50,
    drift: Optional[int] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Segment]:
    """Version chains for ``n_keys`` keys.

    Key ``k`` occupies the value band ``[k * band, (k + 1) * band)``.  Each
    version is a segment from ``(t_i, v_i)`` to ``(t_{i+1}, v_{i+1})``;
    consecutive versions share the transition point (touching).
    """
    rng = rng if rng is not None else random.Random(seed)
    if drift is None:
        drift = band // 4
    segments = []
    for k in range(n_keys):
        v_lo = k * band + drift + 1
        v_hi = (k + 1) * band - drift - 2
        t = rng.randint(0, max_duration)
        v = rng.randint(v_lo, v_hi)
        for j in range(versions_per_key):
            t_next = t + rng.randint(1, max_duration)
            v_next = min(max(v + rng.randint(-drift, drift), v_lo), v_hi)
            if v_next == v and t_next == t:
                t_next += 1
            segments.append(
                Segment.from_coords(t, v, t_next, v_next, label=("ver", k, j))
            )
            t, v = t_next, v_next
    return segments
