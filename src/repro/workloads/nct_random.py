"""Random NCT plane-segment sets, non-crossing by construction.

Two regimes:

* :func:`grid_segments` — one segment per grid cell, endpoints strictly
  inside the cell, so segments are pairwise disjoint (never even touch).
* :func:`grid_segments_touching` — segments drawn between corners of a
  coarse grid graph along a random spanning structure; segments share
  corners (touch) but never cross.

Both return plane :class:`~repro.geometry.segment.Segment` objects with
integer coordinates and stable labels.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..geometry import Segment


def _rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def grid_segments(
    n: int,
    cell_size: int = 100,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Segment]:
    """``n`` pairwise-disjoint segments, one per cell of a near-square grid.

    Each segment's endpoints are strictly inside its cell (margin 1), so no
    two segments can intersect at all.
    """
    rng = _rng(seed, rng)
    cols = max(1, math.isqrt(n))
    segments = []
    for i in range(n):
        row, col = divmod(i, cols)
        x_base = col * cell_size
        y_base = row * cell_size
        while True:
            x1 = x_base + rng.randint(1, cell_size - 2)
            y1 = y_base + rng.randint(1, cell_size - 2)
            x2 = x_base + rng.randint(1, cell_size - 2)
            y2 = y_base + rng.randint(1, cell_size - 2)
            if (x1, y1) != (x2, y2):
                break
        segments.append(Segment.from_coords(x1, y1, x2, y2, label=("g", i)))
    return segments


def grid_segments_touching(
    n: int,
    cell_size: int = 100,
    touch_fraction: float = 0.5,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Segment]:
    """Like :func:`grid_segments`, but a fraction of segments snap an
    endpoint onto a neighbouring segment's endpoint (touch configurations).

    Construction: a ``touch_fraction`` of cells host *chains* — the segment
    starts exactly where the previous cell's segment ended (on the shared
    cell border), producing long touching polyline runs; the rest are
    interior segments as in :func:`grid_segments`.
    """
    rng = _rng(seed, rng)
    cols = max(1, math.isqrt(n))
    segments: List[Segment] = []
    prev_end = None
    for i in range(n):
        row, col = divmod(i, cols)
        x_base = col * cell_size
        y_base = row * cell_size
        chain = rng.random() < touch_fraction and prev_end is not None and col > 0
        if chain:
            x1, y1 = prev_end
        else:
            x1 = x_base + rng.randint(1, cell_size - 2)
            y1 = y_base + rng.randint(1, cell_size - 2)
        # End on the right border of the cell (shared with the next cell)
        # so the next segment may chain onto it; last column ends inside.
        if col + 1 < cols:
            x2 = x_base + cell_size
            y2 = y_base + rng.randint(1, cell_size - 2)
        else:
            x2 = x_base + rng.randint(1, cell_size - 2)
            y2 = y_base + rng.randint(1, cell_size - 2)
        if (x1, y1) == (x2, y2):
            y2 = y2 + 1 if y2 < y_base + cell_size - 1 else y2 - 1
        segments.append(Segment.from_coords(x1, y1, x2, y2, label=("t", i)))
        prev_end = (x2, y2) if col + 1 < cols else None
    return segments


def bounding_box(segments: List[Segment]):
    """(xmin, ymin, xmax, ymax) of a non-empty segment set."""
    if not segments:
        raise ValueError("empty segment set has no bounding box")
    xmin = min(s.xmin for s in segments)
    xmax = max(s.xmax for s in segments)
    ymin = min(s.ymin for s in segments)
    ymax = max(s.ymax for s in segments)
    return xmin, ymin, xmax, ymax
