"""Synthetic workloads: NCT segment sets and query streams.

Every generator is deterministic under a ``seed`` and produces sets that
are non-crossing by construction (see each module's argument for why).
"""

from .files import dump, dumps, load, loads
from .linebased import fan, shared_base_fans, verticals, with_on_line_segments
from .map_layer import delaunay_edges, monotone_polylines
from .nct_random import bounding_box, grid_segments, grid_segments_touching
from .queries import (
    hqueries,
    measured_output,
    mixed_queries,
    ray_queries,
    segment_queries,
    stabbing_queries,
)
from .temporal import version_history

__all__ = [
    "bounding_box",
    "dump",
    "dumps",
    "load",
    "loads",
    "delaunay_edges",
    "fan",
    "grid_segments",
    "grid_segments_touching",
    "hqueries",
    "measured_output",
    "mixed_queries",
    "monotone_polylines",
    "ray_queries",
    "segment_queries",
    "shared_base_fans",
    "stabbing_queries",
    "temporal",
    "verticals",
    "version_history",
    "with_on_line_segments",
]

from . import temporal  # noqa: E402  (re-export the module itself)
