"""Reading and writing segment sets as text files.

A minimal interchange format so real data can flow in and out of the
library without losing exactness:

* one segment per line: ``x1 <TAB> y1 <TAB> x2 <TAB> y2 [<TAB> label]``;
* coordinates are integers or exact rationals written ``p/q``;
* ``#``-prefixed lines and blank lines are ignored;
* labels default to the 0-based line position among segments.

The loader can validate the NCT invariant on the way in.
"""

from __future__ import annotations

import io
from fractions import Fraction
from typing import Iterable, List, TextIO, Union

from ..geometry import Segment, validate_nct

PathOrFile = Union[str, TextIO]


class SegmentFormatError(ValueError):
    """Raised for malformed segment lines, with the line number."""

    def __init__(self, lineno: int, reason: str):
        self.lineno = lineno
        super().__init__(f"line {lineno}: {reason}")


def _parse_coordinate(token: str, lineno: int):
    token = token.strip()
    try:
        if "/" in token:
            num, den = token.split("/", 1)
            return Fraction(int(num), int(den))
        return int(token)
    except (ValueError, ZeroDivisionError) as exc:
        raise SegmentFormatError(lineno, f"bad coordinate {token!r}") from exc


def _format_coordinate(value) -> str:
    if isinstance(value, Fraction) and value.denominator != 1:
        return f"{value.numerator}/{value.denominator}"
    return str(int(value))


def loads(text: str, validate: bool = False) -> List[Segment]:
    """Parse segments from a string (see module docstring for the format)."""
    return load(io.StringIO(text), validate=validate)


def load(source: PathOrFile, validate: bool = False) -> List[Segment]:
    """Load segments from a path or open text file."""
    if isinstance(source, str):
        with open(source) as fh:
            return load(fh, validate=validate)
    segments: List[Segment] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) == 1:
            parts = line.split()
        if len(parts) not in (4, 5):
            raise SegmentFormatError(
                lineno, f"expected 4 or 5 fields, got {len(parts)}"
            )
        x1, y1, x2, y2 = (_parse_coordinate(p, lineno) for p in parts[:4])
        label = parts[4] if len(parts) == 5 else len(segments)
        if (x1, y1) == (x2, y2):
            raise SegmentFormatError(lineno, "degenerate segment")
        segments.append(Segment.from_coords(x1, y1, x2, y2, label=label))
    if validate:
        validate_nct(segments)
    return segments


def dumps(segments: Iterable[Segment]) -> str:
    """Serialise segments to the text format (labels stringified)."""
    out = io.StringIO()
    dump(segments, out)
    return out.getvalue()


def dump(segments: Iterable[Segment], sink: PathOrFile) -> None:
    """Write segments to a path or open text file."""
    if isinstance(sink, str):
        with open(sink, "w") as fh:
            dump(segments, fh)
            return
    sink.write("# x1\ty1\tx2\ty2\tlabel\n")
    for s in segments:
        fields = [
            _format_coordinate(s.start.x),
            _format_coordinate(s.start.y),
            _format_coordinate(s.end.x),
            _format_coordinate(s.end.y),
            str(s.label),
        ]
        sink.write("\t".join(fields) + "\n")
