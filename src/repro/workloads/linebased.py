"""Generators of non-crossing line-based segment sets (Section 2 inputs).

All generators return :class:`~repro.geometry.linebased.LineBasedSegment`
lists that are NCT *by construction*:

* :func:`verticals` — segments rising straight up; never cross.
* :func:`fan` — base points on a grid, each apex confined to the open
  vertical slab around its base point, so no two segments ever share an
  x-extent interior.
* :func:`shared_base_fans` — clusters sharing a base point (touching), with
  apexes ordered by angle inside the cluster's slab.

Coordinates are integers scaled by ``spread`` so exact predicates stay fast.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..geometry import LineBasedSegment


def _rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def verticals(
    n: int,
    max_height: int = 1000,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[LineBasedSegment]:
    """``n`` segments rising vertically from distinct base points."""
    rng = _rng(seed, rng)
    heights = [rng.randint(1, max_height) for _ in range(n)]
    return [
        LineBasedSegment(2 * i, 2 * i, h, label=("v", i))
        for i, h in enumerate(heights)
    ]


def fan(
    n: int,
    max_height: int = 1000,
    spread: int = 10,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[LineBasedSegment]:
    """``n`` leaning segments, each confined to its own vertical slab.

    Base point ``i`` sits at ``u = 2 * spread * i``; the apex stays within
    ``(u - spread, u + spread)``, so x-extents of distinct segments never
    share interior points and the set is non-crossing.
    """
    rng = _rng(seed, rng)
    segments = []
    for i in range(n):
        u0 = 2 * spread * i
        du = rng.randint(-(spread - 1), spread - 1)
        h = rng.randint(1, max_height)
        segments.append(LineBasedSegment(u0, u0 + du, h, label=("f", i)))
    return segments


def shared_base_fans(
    n_clusters: int,
    per_cluster: int = 4,
    max_height: int = 1000,
    spread: int = 100,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[LineBasedSegment]:
    """Clusters of segments sharing one base point (touching configurations).

    Within a cluster the segments fan out with strictly increasing slope at
    equal height, so they only meet at the shared base point; clusters live
    in disjoint slabs.
    """
    rng = _rng(seed, rng)
    segments = []
    for c in range(n_clusters):
        u0 = 2 * spread * c
        height = rng.randint(per_cluster, max_height)
        # Distinct apex offsets inside (-spread, spread), shared height:
        # rays from one point with distinct directions never re-meet.
        offsets = rng.sample(range(-(spread - 1), spread), per_cluster)
        for k, du in enumerate(sorted(offsets)):
            segments.append(
                LineBasedSegment(u0, u0 + du, height, label=("c", c, k))
            )
    return segments


def with_on_line_segments(
    segments: List[LineBasedSegment],
    n_on_line: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[LineBasedSegment]:
    """Append ``n_on_line`` disjoint segments lying on the base line.

    They are placed beyond the maximum u of the input so nothing crosses.
    """
    rng = _rng(seed, rng)
    start = max((max(s.u0, s.u1) for s in segments), default=0) + 10
    extra = []
    u = start
    for i in range(n_on_line):
        width = rng.randint(1, 10)
        extra.append(LineBasedSegment(u, u + width, 0, label=("ol", i)))
        u += width + rng.randint(1, 5)
    return segments + extra
