"""Query generators with controllable output size.

Benchmarks sweep both the database size ``N`` and the output size ``T``
(the paper's bounds have an additive ``t = T/B`` term), so the generators
can target a selectivity: the fraction of segments a query reports.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence

from ..geometry import (
    HQuery,
    LineBasedSegment,
    Segment,
    VerticalQuery,
    vs_intersects,
)


def _rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def stabbing_queries(
    segments: Sequence[Segment],
    count: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[VerticalQuery]:
    """Full-line queries at x positions drawn from the data's x-extent."""
    rng = _rng(seed, rng)
    xmin = min(s.xmin for s in segments)
    xmax = max(s.xmax for s in segments)
    return [VerticalQuery.line(rng.randint(int(xmin), int(xmax))) for _ in range(count)]


def segment_queries(
    segments: Sequence[Segment],
    count: int,
    selectivity: float = 0.01,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[VerticalQuery]:
    """Vertical segment queries whose expected output tracks ``selectivity``.

    For each query an x is drawn, the stabbed segments' intersection
    ordinates are computed exactly, and a y-window covering about
    ``selectivity * len(segments)`` of them is cut.  When the stab at x
    yields fewer hits than the target, the window covers all of them.
    """
    rng = _rng(seed, rng)
    xmin = min(s.xmin for s in segments)
    xmax = max(s.xmax for s in segments)
    target = max(1, int(selectivity * len(segments)))
    queries = []
    for _ in range(count):
        x0 = rng.randint(int(xmin), int(xmax))
        ys = []
        for s in segments:
            if not s.spans_x(x0):
                continue
            if s.is_vertical:
                ys.append(Fraction(s.ymin))
            else:
                ys.append(s.y_at(x0))
        if not ys:
            queries.append(VerticalQuery.segment(x0, 0, 1))
            continue
        ys.sort()
        start = rng.randint(0, max(0, len(ys) - target))
        window = ys[start : start + target]
        queries.append(VerticalQuery.segment(x0, window[0], window[-1]))
    return queries


def ray_queries(
    segments: Sequence[Segment],
    count: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[VerticalQuery]:
    """Upward/downward ray queries anchored inside the data's bounding box."""
    rng = _rng(seed, rng)
    xmin = min(s.xmin for s in segments)
    xmax = max(s.xmax for s in segments)
    ymin = min(s.ymin for s in segments)
    ymax = max(s.ymax for s in segments)
    queries = []
    for _ in range(count):
        x0 = rng.randint(int(xmin), int(xmax))
        y0 = rng.randint(int(ymin), int(ymax))
        if rng.random() < 0.5:
            queries.append(VerticalQuery.ray_up(x0, ylo=y0))
        else:
            queries.append(VerticalQuery.ray_down(x0, yhi=y0))
    return queries


def mixed_queries(
    segments: Sequence[Segment],
    count: int,
    selectivity: float = 0.01,
    seed: Optional[int] = None,
) -> List[VerticalQuery]:
    """An even mix of the three generalized-segment query kinds."""
    rng = _rng(seed, None)
    per_kind = count // 3
    out = stabbing_queries(segments, per_kind, rng=rng)
    out += ray_queries(segments, per_kind, rng=rng)
    out += segment_queries(segments, count - 2 * per_kind, selectivity, rng=rng)
    rng.shuffle(out)
    return out


def hqueries(
    segments: Sequence[LineBasedSegment],
    count: int,
    selectivity: float = 0.05,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[HQuery]:
    """Constant-height queries against a line-based set.

    The height is drawn up to the tallest apex; the u-window is cut around
    the sorted crossing ordinates to approximate the target selectivity.
    """
    rng = _rng(seed, rng)
    max_h = max((s.h1 for s in segments), default=1)
    target = max(1, int(selectivity * len(segments)))
    queries = []
    for _ in range(count):
        h = rng.randint(0, int(max_h))
        us = sorted(s.u_at(h) for s in segments if not s.on_base_line and s.h1 >= h)
        if not us:
            queries.append(HQuery.segment(h, 0, 1))
            continue
        start = rng.randint(0, max(0, len(us) - target))
        window = us[start : start + target]
        queries.append(HQuery.segment(h, window[0], window[-1]))
    return queries


def measured_output(segments: Sequence[Segment], query: VerticalQuery) -> int:
    """Exact output size ``T`` of a query (brute force; for harness tables)."""
    return sum(1 for s in segments if vs_intersects(s, query))
