"""``repro serve``: an asyncio daemon in front of a sharded database.

The worker pool makes batch *execution* parallel; this module makes it a
*service*.  One :class:`ServeDaemon` owns a pool-backed
:class:`~repro.serving.sharded.ShardedSegmentDatabase` and speaks a tiny
length-prefixed pickle protocol over TCP:

* **request batching** — concurrent client requests are coalesced (up
  to ``max_batch`` requests, waiting at most ``batch_window_s`` for
  stragglers) into one ``query_batch`` call, so the per-batch pool
  overhead amortizes across clients exactly like it amortizes across
  queries;
* **admission control** — at most ``max_pending`` requests queue; past
  that the daemon answers ``overloaded`` *immediately* instead of
  building an unbounded backlog (the client can retry; the queue can't
  melt);
* **graceful drain** — SIGTERM/SIGINT stop the listener, every queued
  request still executes and answers, the worker pool shuts down (which
  unlinks the shared-memory segments), and the daemon exits 0 with a
  JSON drain report.

Observability reuses the session's primitives: a
:class:`~repro.telemetry.MetricsRegistry` holds ``serve.request_s`` /
``serve.batch_s`` latency histograms plus request/query/reject counters,
and batch execution runs under a ``timed_span`` so an installed
:func:`~repro.telemetry.wall_tracing` tracer sees daemon batches next to
the pool's dispatch/attach/query spans.

Wire format: 4-byte big-endian frame length, then a pickled dict.
Inbound frames are decoded with the snapshot layer's *restricted*
unpickler — a network peer gets the same allowlist a snapshot file gets.
:class:`ServeClient` is the blocking client used by the CLI and tests.
"""

from __future__ import annotations

import asyncio
import pickle
import signal
import socket
import struct
import threading
from time import perf_counter
from typing import Any, List, Optional

from ..iosim import restricted_loads
from ..telemetry import MetricsRegistry, timed_span

_FRAME = struct.Struct(">I")
#: Upper bound on one frame; anything larger is damage, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ServeRejected(RuntimeError):
    """The daemon refused a request (overloaded or draining)."""


def _encode_frame(obj: Any) -> bytes:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte cap")
    return _FRAME.pack(len(payload)) + payload


async def _read_frame(reader: asyncio.StreamReader) -> Any:
    header = await reader.readexactly(_FRAME.size)
    (length,) = _FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"peer announced a {length}-byte frame "
                         f"(cap {MAX_FRAME_BYTES})")
    payload = await reader.readexactly(length)
    return restricted_loads(payload)


class ServeDaemon:
    """Serve ``db.query_batch`` over TCP with batching and backpressure.

    ``db`` is any object with a ``query_batch(queries)`` method — in
    production a pool-backed sharded database, in tests whatever stub
    the scenario needs.  ``port=0`` binds an ephemeral port; the bound
    port is published on :attr:`port` before ``on_ready`` fires.
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_pending: int = 64, max_batch: int = 64,
                 batch_window_s: float = 0.002,
                 registry: Optional[MetricsRegistry] = None):
        if max_pending < 1 or max_batch < 1:
            raise ValueError("max_pending and max_batch must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self.db = db
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._stop: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self.ready = threading.Event()  # set once the port is bound
        self.drain_report: Optional[dict] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self, install_signal_handlers: bool = True) -> dict:
        """Serve until stopped; returns (and stores) the drain report."""
        return asyncio.run(self._main(install_signal_handlers))

    def request_stop(self) -> None:
        """Ask a running daemon to drain and exit (thread-safe)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _main(self, install_signal_handlers: bool) -> dict:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, ValueError,
                        RuntimeError):  # platform or non-main thread
                    pass
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        batcher = asyncio.create_task(self._batcher())
        self.ready.set()
        try:
            await self._stop.wait()
        finally:
            # Drain: no new connections, no new admissions; everything
            # already admitted executes AND answers — the idle event only
            # sets once the last in-flight response is on the wire.
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._queue.join()
            await self._idle.wait()
            batcher.cancel()
            try:
                await batcher
            except asyncio.CancelledError:
                pass
        self.drain_report = {
            "drained": True,
            "host": self.host,
            "port": self.port,
            "requests": self.registry.counter("serve.requests").value,
            "queries": self.registry.counter("serve.queries").value,
            "batches": self.registry.counter("serve.batches").value,
            "rejected": self.registry.counter("serve.rejected").value,
            "request_s": self.registry.latency("serve.request_s").summary(),
            "batch_s": self.registry.latency("serve.batch_s").summary(),
        }
        return self.drain_report

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # peer hung up
                except Exception as exc:  # undecodable frame: answer, drop
                    writer.write(_encode_frame(
                        {"ok": False, "error": f"bad frame: {exc}"}))
                    await writer.drain()
                    break
                self._inflight += 1
                self._idle.clear()
                try:
                    response = await self._respond(request)
                    writer.write(_encode_frame(response))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if self._draining:
                    break  # one answer per connection once draining
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer raced us
                pass

    async def _respond(self, request: Any) -> dict:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a dict"}
        kind = request.get("kind")
        if kind == "ping":
            return {"ok": True, "draining": self._draining}
        if kind == "stats":
            stats = {"metrics": self.registry.to_dict()}
            latency = getattr(self.db, "latency_report", None)
            if callable(latency):
                stats["latency"] = latency()
            return {"ok": True, "stats": stats}
        if kind != "query":
            return {"ok": False, "error": f"unknown request kind {kind!r}"}

        queries = request.get("queries") or []
        self.registry.counter("serve.requests").inc()
        self.registry.counter("serve.queries").inc(len(queries))
        if not queries:
            return {"ok": True, "results": []}
        if self._draining:
            return {"ok": False, "error": "draining"}
        future = self._loop.create_future()
        try:
            self._queue.put_nowait((queries, future))
        except asyncio.QueueFull:
            self.registry.counter("serve.rejected").inc()
            return {"ok": False, "error": "overloaded"}
        t0 = perf_counter()
        try:
            results = await future
        except Exception as exc:
            return {"ok": False, "error": f"query failed: {exc}"}
        self.registry.latency("serve.request_s").observe(perf_counter() - t0)
        return {"ok": True, "results": results}

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    async def _batcher(self) -> None:
        """Pull admitted requests, coalesce, execute, scatter back."""
        while True:
            batch = [await self._queue.get()]
            deadline = self._loop.time() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = deadline - self._loop.time()
                if remaining <= 0 and self.batch_window_s > 0:
                    break
                try:
                    if self.batch_window_s > 0:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(), timeout=max(remaining, 0)))
                    else:
                        batch.append(self._queue.get_nowait())
                except (asyncio.TimeoutError, asyncio.QueueEmpty):
                    break
            await self._execute(batch)

    async def _execute(self, batch: List) -> None:
        flat: List = []
        bounds: List[int] = []
        for queries, _future in batch:
            flat.extend(queries)
            bounds.append(len(flat))
        t0 = perf_counter()
        try:
            with timed_span("serve.batch", category="daemon",
                            requests=len(batch), queries=len(flat)):
                results = await self._loop.run_in_executor(
                    None, self.db.query_batch, flat)
        except Exception as exc:
            for _queries, future in batch:
                if not future.done():
                    future.set_exception(
                        RuntimeError(str(exc) or type(exc).__name__))
            return
        finally:
            self.registry.latency("serve.batch_s").observe(
                perf_counter() - t0)
            self.registry.counter("serve.batches").inc()
            for _item in batch:
                self._queue.task_done()
        start = 0
        for (_queries, future), end in zip(batch, bounds):
            if not future.done():
                future.set_result(results[start:end])
            start = end


class ServeClient:
    """Blocking client for :class:`ServeDaemon` (CLI and tests)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def request(self, payload: dict) -> dict:
        """One raw round trip; returns the response dict verbatim."""
        self._sock.sendall(_encode_frame(payload))
        header = self._recv_exact(_FRAME.size)
        (length,) = _FRAME.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ValueError(f"daemon announced a {length}-byte frame")
        return restricted_loads(self._recv_exact(length))

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def query_batch(self, queries) -> List:
        response = self.request({"kind": "query", "queries": list(queries)})
        if not response.get("ok"):
            raise ServeRejected(response.get("error", "rejected"))
        return response["results"]

    def ping(self) -> dict:
        return self.request({"kind": "ping"})

    def stats(self) -> dict:
        response = self.request({"kind": "stats"})
        if not response.get("ok"):
            raise ServeRejected(response.get("error", "rejected"))
        return response["stats"]

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
