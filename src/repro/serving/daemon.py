"""``repro serve``: an asyncio daemon in front of a sharded database.

The worker pool makes batch *execution* parallel; this module makes it a
*service*.  One :class:`ServeDaemon` owns a pool-backed
:class:`~repro.serving.sharded.ShardedSegmentDatabase` and speaks a tiny
length-prefixed pickle protocol over TCP:

* **request batching** — concurrent client requests are coalesced (up
  to ``max_batch`` requests, waiting at most ``batch_window_s`` for
  stragglers) into one ``query_batch`` call, so the per-batch pool
  overhead amortizes across clients exactly like it amortizes across
  queries;
* **admission control** — at most ``max_pending`` requests queue; past
  that the daemon answers ``overloaded`` *immediately* instead of
  building an unbounded backlog (the client can retry; the queue can't
  melt);
* **graceful drain** — SIGTERM/SIGINT stop the listener, every queued
  request still executes and answers, the worker pool shuts down (which
  unlinks the shared-memory segments), and the daemon exits 0 with a
  JSON drain report.

Observability reuses the session's primitives: a
:class:`~repro.telemetry.MetricsRegistry` holds ``serve.request_s`` /
``serve.batch_s`` latency histograms plus request/query/reject counters,
and batch execution runs under a ``timed_span`` so an installed
:func:`~repro.telemetry.wall_tracing` tracer sees daemon batches next to
the pool's dispatch/attach/query spans.

Wire format: 4-byte big-endian frame length, then a pickled dict.
Inbound frames are decoded with the snapshot layer's *restricted*
unpickler — a network peer gets the same allowlist a snapshot file gets.
:class:`ServeClient` is the blocking client used by the CLI and tests.
"""

from __future__ import annotations

import asyncio
import pickle
import signal
import socket
import struct
import threading
import time
from random import Random
from time import perf_counter
from typing import Any, List, Optional

from ..core.recovery import DegradedBatch
from ..iosim import restricted_loads
from ..telemetry import MetricsRegistry, timed_span
from .resilience import ServeConnectionError

_FRAME = struct.Struct(">I")
#: Upper bound on one frame; anything larger is damage, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: ``error_type`` values a daemon error frame may carry, with whether a
#: retry can help.  ``overloaded``/``draining`` are transient service
#: states; the rest describe the request (or the daemon's inability to
#: serve it at all), which a retry would only repeat.
ERROR_TYPES = {
    "bad-frame": False,
    "bad-request": False,
    "overloaded": True,
    "draining": True,
    "deadline": False,
    "internal": False,
}


def _error(error_type: str, message: str) -> dict:
    return {"ok": False, "error": message, "error_type": error_type,
            "retryable": ERROR_TYPES[error_type]}


class ServeRejected(RuntimeError):
    """The daemon refused a request via a structured error frame.

    ``error_type`` is one of :data:`ERROR_TYPES`; ``retryable`` mirrors
    the daemon's own judgment of whether trying again can succeed.
    """

    def __init__(self, message: str, error_type: Optional[str] = None,
                 retryable: bool = False):
        super().__init__(message)
        self.error_type = error_type
        self.retryable = retryable


def _encode_frame(obj: Any) -> bytes:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte cap")
    return _FRAME.pack(len(payload)) + payload


async def _read_frame(reader: asyncio.StreamReader) -> Any:
    header = await reader.readexactly(_FRAME.size)
    (length,) = _FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"peer announced a {length}-byte frame "
                         f"(cap {MAX_FRAME_BYTES})")
    payload = await reader.readexactly(length)
    return restricted_loads(payload)


class ServeDaemon:
    """Serve ``db.query_batch`` over TCP with batching and backpressure.

    ``db`` is any object with a ``query_batch(queries)`` method — in
    production a pool-backed sharded database, in tests whatever stub
    the scenario needs.  ``port=0`` binds an ephemeral port; the bound
    port is published on :attr:`port` before ``on_ready`` fires.
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_pending: int = 64, max_batch: int = 64,
                 batch_window_s: float = 0.002,
                 registry: Optional[MetricsRegistry] = None):
        if max_pending < 1 or max_batch < 1:
            raise ValueError("max_pending and max_batch must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self.db = db
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._stop: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._handlers: set = set()  # live _handle tasks, for clean drain
        self.ready = threading.Event()  # set once the port is bound
        self.drain_report: Optional[dict] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self, install_signal_handlers: bool = True) -> dict:
        """Serve until stopped; returns (and stores) the drain report."""
        return asyncio.run(self._main(install_signal_handlers))

    def request_stop(self) -> None:
        """Ask a running daemon to drain and exit (thread-safe)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _main(self, install_signal_handlers: bool) -> dict:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, ValueError,
                        RuntimeError):  # platform or non-main thread
                    pass
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        batcher = asyncio.create_task(self._batcher())
        self.ready.set()
        try:
            await self._stop.wait()
        finally:
            # Drain: no new connections, no new admissions; everything
            # already admitted executes AND answers — the idle event only
            # sets once the last in-flight response is on the wire.
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._queue.join()
            await self._idle.wait()
            # Idle keep-alive connections would otherwise park their
            # handler tasks in readexactly until asyncio.run tears the
            # loop down and cancels them with a logged traceback; hang
            # up on them explicitly and wait for the handlers to exit.
            for task in list(self._handlers):
                task.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers,
                                     return_exceptions=True)
            batcher.cancel()
            try:
                await batcher
            except asyncio.CancelledError:
                pass
        self.drain_report = {
            "drained": True,
            "host": self.host,
            "port": self.port,
            "requests": self.registry.counter("serve.requests").value,
            "queries": self.registry.counter("serve.queries").value,
            "batches": self.registry.counter("serve.batches").value,
            "rejected": self.registry.counter("serve.rejected").value,
            "deadline_expired": self.registry.counter("serve.deadline").value,
            "degraded_requests": self.registry.counter("serve.degraded").value,
            "request_s": self.registry.latency("serve.request_s").summary(),
            "batch_s": self.registry.latency("serve.batch_s").summary(),
        }
        return self.drain_report

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            while True:
                try:
                    request = await _read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # peer hung up
                except Exception as exc:  # undecodable frame: answer, drop
                    writer.write(_encode_frame(
                        _error("bad-frame", f"bad frame: {exc}")))
                    await writer.drain()
                    break
                self._inflight += 1
                self._idle.clear()
                try:
                    response = await self._respond(request)
                    writer.write(_encode_frame(response))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if self._draining:
                    break  # one answer per connection once draining
        except asyncio.CancelledError:
            pass  # drain hung up on an idle connection: a clean close
        finally:
            self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError,
                    asyncio.CancelledError):  # pragma: no cover - raced
                pass

    async def _respond(self, request: Any) -> dict:
        if not isinstance(request, dict):
            return _error("bad-request", "request must be a dict")
        kind = request.get("kind")
        if kind == "ping":
            return {"ok": True, "draining": self._draining}
        if kind == "health":
            return {"ok": True, "health": self._health()}
        if kind == "stats":
            stats = {"metrics": self.registry.to_dict()}
            latency = getattr(self.db, "latency_report", None)
            if callable(latency):
                stats["latency"] = latency()
            return {"ok": True, "stats": stats}
        if kind != "query":
            return _error("bad-request", f"unknown request kind {kind!r}")

        timeout_ms = request.get("timeout_ms")
        if timeout_ms is not None and (
                not isinstance(timeout_ms, (int, float))
                or isinstance(timeout_ms, bool) or timeout_ms <= 0):
            return _error("bad-request",
                          f"timeout_ms must be a positive number, "
                          f"got {timeout_ms!r}")
        queries = request.get("queries") or []
        self.registry.counter("serve.requests").inc()
        self.registry.counter("serve.queries").inc(len(queries))
        if not queries:
            return {"ok": True, "results": []}
        if self._draining:
            return _error("draining", "draining")
        future = self._loop.create_future()
        try:
            self._queue.put_nowait((queries, future))
        except asyncio.QueueFull:
            self.registry.counter("serve.rejected").inc()
            return _error("overloaded", "overloaded")
        t0 = perf_counter()
        try:
            if timeout_ms is not None:
                # The batcher's future.done() guards make cancellation
                # safe: an expired request's slot is simply skipped when
                # results scatter back.
                results = await asyncio.wait_for(future,
                                                 timeout=timeout_ms / 1000.0)
            else:
                results = await future
        except asyncio.TimeoutError:
            self.registry.counter("serve.deadline").inc()
            return _error("deadline",
                          f"deadline of {timeout_ms:g}ms exceeded")
        except Exception as exc:
            return _error("internal", f"query failed: {exc}")
        self.registry.latency("serve.request_s").observe(perf_counter() - t0)
        response = {"ok": True, "results": results}
        if getattr(results, "degraded", False):
            response["degraded"] = True
            response["coverage"] = results.shard_coverage
        return response

    def _health(self) -> dict:
        """The ``health`` frame: daemon liveness plus, when the database
        exposes one, its ``health_report()`` (pool workers, breakers,
        degradation counters)."""
        health = {
            "draining": self._draining,
            "inflight": self._inflight,
            "pending": self._queue.qsize() if self._queue is not None else 0,
            "max_pending": self.max_pending,
            "requests": self.registry.counter("serve.requests").value,
            "rejected": self.registry.counter("serve.rejected").value,
            "deadline_expired": self.registry.counter("serve.deadline").value,
            "degraded_requests": self.registry.counter("serve.degraded").value,
        }
        db_health = getattr(self.db, "health_report", None)
        if callable(db_health):
            health["db"] = db_health()
        return health

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    async def _batcher(self) -> None:
        """Pull admitted requests, coalesce, execute, scatter back."""
        while True:
            batch = [await self._queue.get()]
            deadline = self._loop.time() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = deadline - self._loop.time()
                if remaining <= 0 and self.batch_window_s > 0:
                    break
                try:
                    if self.batch_window_s > 0:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(), timeout=max(remaining, 0)))
                    else:
                        batch.append(self._queue.get_nowait())
                except (asyncio.TimeoutError, asyncio.QueueEmpty):
                    break
            await self._execute(batch)

    async def _execute(self, batch: List) -> None:
        flat: List = []
        bounds: List[int] = []
        for queries, _future in batch:
            flat.extend(queries)
            bounds.append(len(flat))
        t0 = perf_counter()
        try:
            with timed_span("serve.batch", category="daemon",
                            requests=len(batch), queries=len(flat)):
                results = await self._loop.run_in_executor(
                    None, self.db.query_batch, flat)
        except Exception as exc:
            for _queries, future in batch:
                if not future.done():
                    future.set_exception(
                        RuntimeError(str(exc) or type(exc).__name__))
            return
        finally:
            self.registry.latency("serve.batch_s").observe(
                perf_counter() - t0)
            self.registry.counter("serve.batches").inc()
            for _item in batch:
                self._queue.task_done()
        start = 0
        degraded = getattr(results, "degraded", False)
        for (_queries, future), end in zip(batch, bounds):
            if not future.done():
                chunk = results[start:end]
                if degraded:
                    # Slicing a DegradedBatch yields a plain list; re-wrap
                    # so every request in a shard-lossy coalesced batch
                    # carries the coverage map (the map describes the
                    # whole serving batch, a superset of what any single
                    # request routed to).
                    chunk = DegradedBatch(chunk, results.shard_coverage,
                                          results.reason)
                    self.registry.counter("serve.degraded").inc()
                future.set_result(chunk)
            start = end


class ServeClient:
    """Blocking client for :class:`ServeDaemon` (CLI and tests).

    Every way the TCP conversation can die — connect timeout, read
    timeout, reset, short frame, undecodable response bytes — surfaces
    as a typed
    :class:`~repro.serving.resilience.ServeConnectionError` instead of a
    raw traceback, and the dead socket is dropped so the next call
    reconnects.  All request kinds are idempotent reads, so with
    ``retries > 0`` a failed round trip is retried on a fresh
    connection after jittered exponential backoff (default ``retries=0``
    keeps every daemon answer — including ``overloaded`` — visible to
    the caller, which admission-control tests rely on).

    ``timeout`` is the legacy single knob and sets both of the split
    timeouts when given; prefer ``connect_timeout`` (TCP establishment)
    and ``request_timeout`` (per-read) directly.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 30.0,
                 retries: int = 0,
                 retry_backoff_s: float = 0.05,
                 seed: int = 0):
        if timeout is not None:
            connect_timeout = timeout
            request_timeout = timeout
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self._rng = Random(seed)
        self._sock: Optional[socket.socket] = None
        self._connect()

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
        except socket.timeout as exc:
            raise ServeConnectionError(
                self.host, self.port,
                f"connect timed out after {self.connect_timeout:g}s",
            ) from exc
        except OSError as exc:
            raise ServeConnectionError(
                self.host, self.port, f"connect failed: {exc}") from exc
        self._sock.settimeout(self.request_timeout)

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._sock = None

    def request(self, payload: dict) -> dict:
        """One round trip; returns the response dict verbatim.

        Connection-level failures are retried up to ``retries`` times on
        a fresh connection (jittered exponential backoff between
        attempts); structured daemon answers — including error frames —
        are returned as-is on the first try.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(payload)
            except ServeConnectionError:
                self._drop()
                if attempt >= self.retries:
                    raise
            attempt += 1
            delay = self.retry_backoff_s * (2 ** (attempt - 1))
            time.sleep(delay * (1.0 + 0.5 * self._rng.random()))

    def _request_once(self, payload: dict) -> dict:
        if self._sock is None:
            self._connect()
        try:
            self._sock.sendall(_encode_frame(payload))
            header = self._recv_exact(_FRAME.size)
            (length,) = _FRAME.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise ServeConnectionError(
                    self.host, self.port,
                    f"daemon announced a {length}-byte frame "
                    f"(cap {MAX_FRAME_BYTES}); treating as wire damage")
            data = self._recv_exact(length)
        except socket.timeout as exc:
            raise ServeConnectionError(
                self.host, self.port,
                f"read timed out after {self.request_timeout:g}s",
            ) from exc
        except ServeConnectionError:
            raise
        except (ConnectionError, OSError) as exc:
            raise ServeConnectionError(
                self.host, self.port,
                str(exc) or type(exc).__name__) from exc
        try:
            return restricted_loads(data)
        except Exception as exc:
            # Corrupted pickle bytes fail in arbitrary ways (truncation,
            # flipped opcodes, allowlist rejections) — all of them mean
            # the same thing here: the frame did not survive the wire.
            raise ServeConnectionError(
                self.host, self.port,
                f"undecodable response frame: {exc!r}") from exc

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def query_batch(self, queries, timeout_ms: Optional[float] = None) -> List:
        """Query via the daemon; ``timeout_ms`` sets a per-request
        deadline enforced daemon-side (a ``deadline`` error frame comes
        back when it expires)."""
        request = {"kind": "query", "queries": list(queries)}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        response = self.request(request)
        if not response.get("ok"):
            raise ServeRejected(response.get("error", "rejected"),
                                error_type=response.get("error_type"),
                                retryable=response.get("retryable", False))
        return response["results"]

    def ping(self) -> dict:
        return self.request({"kind": "ping"})

    def stats(self) -> dict:
        response = self.request({"kind": "stats"})
        if not response.get("ok"):
            raise ServeRejected(response.get("error", "rejected"),
                                error_type=response.get("error_type"),
                                retryable=response.get("retryable", False))
        return response["stats"]

    def health(self) -> dict:
        response = self.request({"kind": "health"})
        if not response.get("ok"):
            raise ServeRejected(response.get("error", "rejected"),
                                error_type=response.get("error_type"),
                                retryable=response.get("retryable", False))
        return response["health"]

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
