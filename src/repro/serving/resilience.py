"""Fault tolerance for the serving layer: supervision, breakers, chaos.

PR 4 gave the *storage* layer a seeded, replayable fault model
(:class:`~repro.iosim.FaultSchedule`, CRCs, the crash-point oracle).
This module gives the *serving* layer — worker processes, shared-memory
attach, the TCP daemon — the same treatment, built from four pieces:

:class:`SupervisorPolicy`
    How a :class:`~repro.serving.workers.ShardWorkerPool` survives a
    dead or hung worker: bounded retry rounds with exponential backoff
    plus seeded jitter, a per-task-round deadline so a hang is detected
    instead of waited out, and the circuit-breaker thresholds below.
    ``supervisor=None`` disables supervision entirely and pins the
    legacy failure surface (a raw ``BrokenProcessPool`` escaping).

:class:`CircuitBreaker`
    Per-shard failure accounting.  After ``threshold`` consecutive
    unrecovered failures the shard is *open*: batches fail fast with a
    typed degraded result instead of burning a retry storm against a
    corpse.  After ``cooldown_s`` the breaker goes *half-open* and lets
    one batch probe; success closes it again.

:class:`RpcChaosSchedule`
    The serving twin of :class:`~repro.iosim.FaultSchedule` (same
    :class:`~repro.iosim.faults.ReplayableSchedule` plumbing): seeded,
    deterministic decisions about worker SIGKILLs at named chaos points
    mid-batch and about RPC frame faults (delay, truncation, corruption,
    connection reset), every injection logged to ``history`` so a
    failing chaos run ships its reproduction recipe.

:class:`ChaosProxy`
    A frame-aware TCP proxy between a client and a
    :class:`~repro.serving.daemon.ServeDaemon` that applies the
    schedule's frame faults to the response stream.  The daemon under
    test is untouched — exactly the faults a flaky network injects.

The typed errors at the top are the contract the rest of the stack
keeps: a serving failure is *never* a raw traceback or a silent wrong
answer; it is a complete result, a
:class:`~repro.core.recovery.DegradedResult` with an accurate shard
coverage map, or one of these exceptions.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Tuple

from ..iosim.faults import ReplayableSchedule

#: Named chaos points inside a worker task, in timeline order.  A kill
#: at each point exercises a different recovery obligation: before any
#: work (idempotent resubmit), after the shard attach (re-attach on a
#: fresh process), mid-query (partial engine work discarded), and after
#: the result was computed but before it was shipped (the retry must
#: not double-count anything).
WORKER_KILL_POINTS = (
    "worker.start",
    "worker.after-attach",
    "worker.mid-query",
    "worker.before-reply",
)

#: Frame fault kinds the chaos proxy can inject on a response frame.
FRAME_FAULTS = ("delay", "truncate", "corrupt", "reset")


class ShardDownError(RuntimeError):
    """One or more shards could not serve and degradation was refused.

    ``failures`` maps shard index to ``(kind, reason)`` where ``kind``
    is ``"worker-died"``, ``"timeout"``, or ``"circuit-open"``.
    """

    def __init__(self, failures: Dict[int, Tuple[str, str]]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"shard {index}: {kind} ({reason})"
            for index, (kind, reason) in sorted(self.failures.items())
        )
        super().__init__(detail or "shard failure")


class ServeConnectionError(ConnectionError):
    """The daemon connection died mid-conversation (typed, not a traceback).

    Raised by :class:`~repro.serving.daemon.ServeClient` for connect
    timeouts, read timeouts, resets, and short/undecodable frames —
    every way a TCP peer can vanish.  ``reason`` says which.
    """

    def __init__(self, host: str, port: int, reason: str):
        self.host = host
        self.port = port
        self.reason = reason
        super().__init__(f"{host}:{port}: {reason}")


@dataclass
class SupervisorPolicy:
    """Retry/deadline/backoff knobs for a supervised worker pool.

    A failed task round (worker death, broken executor, or a task
    exceeding ``task_timeout_s``) is retried up to ``max_retries``
    times on a freshly spawned pool; retry *k* sleeps
    ``backoff_s * 2**(k-1)`` scaled by ``1 + jitter * U[0,1)`` from a
    PRNG seeded with ``seed`` (deterministic in tests, decorrelated in a
    fleet).  After ``breaker_threshold`` consecutive exhausted batches a
    shard's circuit opens for ``breaker_cooldown_s`` and fails fast.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    task_timeout_s: Optional[float] = 60.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive or None")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")

    def delay_s(self, retry: int, rng: Random) -> float:
        """Backoff before retry number ``retry`` (1-based), jittered."""
        base = min(self.backoff_s * (2 ** (retry - 1)), self.backoff_cap_s)
        return base * (1.0 + self.jitter * rng.random())

    def to_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "backoff_cap_s": self.backoff_cap_s,
            "jitter": self.jitter,
            "task_timeout_s": self.task_timeout_s,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SupervisorPolicy":
        return cls(**data)


class CircuitBreaker:
    """Consecutive-failure breaker for one shard.

    States: ``closed`` (healthy), ``open`` (failing fast until the
    cooldown elapses), ``half-open`` (cooldown over, one probe batch
    admitted; success closes, failure re-opens).  ``clock`` is
    injectable so tests need not sleep through cooldowns.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 1.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self.last_error: Optional[str] = None
        self.opens = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May the next batch for this shard be attempted?"""
        return self.state != "open"

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self.last_error = None

    def record_failure(self, reason: str) -> None:
        self.last_error = reason
        if self._opened_at is not None:
            # A failed half-open probe re-opens with a fresh cooldown.
            self._opened_at = self._clock()
            self.opens += 1
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = self._clock()
            self.opens += 1

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._failures,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "opens": self.opens,
            "last_error": self.last_error,
        }


class RpcChaosSchedule(ReplayableSchedule):
    """A seeded, replayable schedule of serving-layer faults.

    Parameters
    ----------
    seed:
        Seeds the PRNG; identical seeds replay identical faults.
    worker_kill_rate:
        Probability that a submitted worker task is tagged with a
        SIGKILL at a (seeded-uniform) named chaos point.
    kill_points:
        ``{point: k}`` — kill the worker at the named point on the k-th
        task submission (1-based, one-shot per name).  Point names come
        from :data:`WORKER_KILL_POINTS`.
    max_kills:
        Cap on rate-driven kills (``None`` = unlimited).  A capped
        schedule is guaranteed to let a bounded-retry pool eventually
        succeed, which is what the chaos oracle's "correct complete
        result" arm needs.
    frame_delay_rate / frame_delay_s:
        Probability that the proxy stalls a response frame, and for how
        long.
    frame_truncate_rate:
        Probability that a response frame is cut short and the
        connection closed (the client sees an incomplete frame).
    frame_corrupt_rate:
        Probability that response payload bytes are flipped (the
        client's restricted unpickler rejects the frame).
    conn_reset_rate:
        Probability that the connection is torn down instead of
        answering at all.

    Decisions are consumed in call order, so a retried task or a
    reconnected client gets a *fresh* decision — exactly how a real
    flaky fleet behaves, and still fully replayable from the seed.
    """

    def __init__(
        self,
        seed: int = 0,
        worker_kill_rate: float = 0.0,
        kill_points: Optional[Dict[str, int]] = None,
        max_kills: Optional[int] = None,
        frame_delay_rate: float = 0.0,
        frame_delay_s: float = 0.05,
        frame_truncate_rate: float = 0.0,
        frame_corrupt_rate: float = 0.0,
        conn_reset_rate: float = 0.0,
        enabled: bool = True,
    ):
        for name, rate in (
            ("worker_kill_rate", worker_kill_rate),
            ("frame_delay_rate", frame_delay_rate),
            ("frame_truncate_rate", frame_truncate_rate),
            ("frame_corrupt_rate", frame_corrupt_rate),
            ("conn_reset_rate", conn_reset_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for point in (kill_points or {}):
            if point not in WORKER_KILL_POINTS:
                raise ValueError(f"unknown kill point {point!r}; "
                                 f"pick from {WORKER_KILL_POINTS}")
        super().__init__(seed=seed, enabled=enabled)
        self.worker_kill_rate = worker_kill_rate
        self.kill_points: Dict[str, int] = dict(kill_points or {})
        self.max_kills = max_kills
        self.frame_delay_rate = frame_delay_rate
        self.frame_delay_s = frame_delay_s
        self.frame_truncate_rate = frame_truncate_rate
        self.frame_corrupt_rate = frame_corrupt_rate
        self.conn_reset_rate = conn_reset_rate
        self.kills_injected = 0
        self.frame_faults_injected = 0
        self._task_seq = 0

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def next_worker_kill(self, shard: int) -> Optional[str]:
        """Chaos point at which the worker serving this task dies, if any.

        Called by the pool parent once per task *submission* (retries
        included), so the decision stream is independent of worker
        scheduling and replays exactly.
        """
        if not self.enabled:
            return None
        self._task_seq += 1
        for point, at in list(self.kill_points.items()):
            if self._task_seq >= at:
                del self.kill_points[point]
                self.kills_injected += 1
                self._log("worker-kill", point=point, shard=shard,
                          task_seq=self._task_seq, via="kill_points")
                return point
        if (self.worker_kill_rate
                and (self.max_kills is None
                     or self.kills_injected < self.max_kills)
                and self._rng.random() < self.worker_kill_rate):
            point = WORKER_KILL_POINTS[
                self._rng.randrange(len(WORKER_KILL_POINTS))]
            self.kills_injected += 1
            self._log("worker-kill", point=point, shard=shard,
                      task_seq=self._task_seq, via="rate")
            return point
        return None

    def next_frame_fault(self) -> Optional[str]:
        """Fault kind for the next proxied response frame, if any."""
        if not self.enabled:
            return None
        if self.conn_reset_rate and self._rng.random() < self.conn_reset_rate:
            return self._frame_fault("reset")
        if (self.frame_truncate_rate
                and self._rng.random() < self.frame_truncate_rate):
            return self._frame_fault("truncate")
        if (self.frame_corrupt_rate
                and self._rng.random() < self.frame_corrupt_rate):
            return self._frame_fault("corrupt")
        if self.frame_delay_rate and self._rng.random() < self.frame_delay_rate:
            return self._frame_fault("delay")
        return None

    def _frame_fault(self, kind: str) -> str:
        self.frame_faults_injected += 1
        self._log(f"frame-{kind}")
        return kind

    # ------------------------------------------------------------------
    # reproduction
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "worker_kill_rate": self.worker_kill_rate,
            "kill_points": dict(self.kill_points),
            "max_kills": self.max_kills,
            "frame_delay_rate": self.frame_delay_rate,
            "frame_delay_s": self.frame_delay_s,
            "frame_truncate_rate": self.frame_truncate_rate,
            "frame_corrupt_rate": self.frame_corrupt_rate,
            "conn_reset_rate": self.conn_reset_rate,
            "enabled": self.enabled,
            "kills_injected": self.kills_injected,
            "frame_faults_injected": self.frame_faults_injected,
            "history": list(self.history),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RpcChaosSchedule":
        return cls(
            seed=data.get("seed", 0),
            worker_kill_rate=data.get("worker_kill_rate", 0.0),
            kill_points=data.get("kill_points"),
            max_kills=data.get("max_kills"),
            frame_delay_rate=data.get("frame_delay_rate", 0.0),
            frame_delay_s=data.get("frame_delay_s", 0.05),
            frame_truncate_rate=data.get("frame_truncate_rate", 0.0),
            frame_corrupt_rate=data.get("frame_corrupt_rate", 0.0),
            conn_reset_rate=data.get("conn_reset_rate", 0.0),
            enabled=data.get("enabled", True),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RpcChaosSchedule(seed={self.seed}, "
            f"kills={self.kills_injected}, "
            f"frame_faults={self.frame_faults_injected})"
        )


def chaos_kill_point(point: str, chaos_kill: Optional[str]) -> None:
    """Die here — hard, as a SIGKILLed production worker dies — if the
    task was tagged with this chaos point.  Called from worker code."""
    if chaos_kill == point:
        os.kill(os.getpid(), signal.SIGKILL)


_FRAME = struct.Struct(">I")


class ChaosProxy:
    """A TCP proxy that applies an :class:`RpcChaosSchedule` to frames.

    Sits between a :class:`~repro.serving.daemon.ServeClient` and a
    :class:`~repro.serving.daemon.ServeDaemon`.  Requests pass through
    verbatim; each *response* frame consults the schedule and is
    forwarded, delayed, truncated (then the connection closed), bitwise
    corrupted, or replaced by an abrupt connection teardown.  The client
    therefore sees exactly the failure surface a flaky network
    produces, while the daemon stays healthy — which is the point: the
    chaos oracle holds the *client's* retry/timeout machinery to the
    never-wrong-never-hung contract.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 schedule: RpcChaosSchedule, host: str = "127.0.0.1"):
        self.upstream = (upstream_host, upstream_port)
        self.schedule = schedule
        self._lock = threading.Lock()  # schedule decisions are serialized
        self._listener = socket.create_server((host, 0))
        self.host, self.port = self._listener.getsockname()[:2]
        self._closing = threading.Event()
        self._conns: List[socket.socket] = []
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._relay, args=(client,),
                             daemon=True).start()

    def _relay(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.upstream, timeout=10)
        except OSError:
            client.close()
            return
        with self._lock:
            self._conns.extend((client, upstream))
        done = threading.Event()

        def pump_requests() -> None:
            try:
                while True:
                    chunk = client.recv(65536)
                    if not chunk:
                        break
                    upstream.sendall(chunk)
            except OSError:
                pass
            finally:
                done.set()
                _shutdown(upstream)

        threading.Thread(target=pump_requests, daemon=True).start()
        try:
            self._pump_responses(upstream, client)
        finally:
            done.set()
            _close_both(client, upstream)

    def _pump_responses(self, upstream: socket.socket,
                        client: socket.socket) -> None:
        while True:
            header = _recv_exact(upstream, _FRAME.size)
            if header is None:
                return
            (length,) = _FRAME.unpack(header)
            payload = _recv_exact(upstream, length)
            if payload is None:
                return
            with self._lock:
                fault = self.schedule.next_frame_fault()
            try:
                if fault == "reset":
                    return  # close both ends without answering
                if fault == "delay":
                    time.sleep(self.schedule.frame_delay_s)
                elif fault == "truncate":
                    client.sendall(header + payload[: max(1, length // 2)])
                    return  # short frame, then hang up
                elif fault == "corrupt":
                    corrupted = bytearray(payload)
                    for i in range(0, len(corrupted), 7):
                        corrupted[i] ^= 0xFF
                    client.sendall(header + bytes(corrupted))
                    continue
                client.sendall(header + payload)
            except OSError:
                return

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for sock in conns:
            _close_both(sock)
        self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    while n:
        try:
            chunk = sock.recv(n)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _shutdown(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_WR)
    except OSError:
        pass


def _close_both(*socks: socket.socket) -> None:
    for sock in socks:
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
