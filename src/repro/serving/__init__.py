"""Sharded parallel serving over index snapshots.

The paper's cost model prices one machine answering one query; a serving
deployment answers many queries against data partitioned across workers.
This package adds that layer without touching the engines:

* :class:`ShardedSegmentDatabase` partitions an NCT segment set into K
  x-range slabs, each an ordinary :class:`~repro.core.api.SegmentDatabase`,
  routes vertical queries to the (usually one) intersecting shard, and
  merges results duplicate-free;
* shard snapshots (:meth:`ShardedSegmentDatabase.save` /
  :meth:`ShardedSegmentDatabase.open`) make a built sharded database a
  directory of files that serving processes ``open()`` in O(pages) instead
  of rebuilding in O(N log N);
* a :class:`ShardWorkerPool` executes shard sub-batches across OS
  processes, each worker opening its shard snapshot once and keeping it
  warm; ``workers=0`` runs the identical routing code synchronously.

See DESIGN.md §11 for how shard count and worker count interact with the
paper's per-query I/O bounds.
"""

from .reporting import ShardBatchStats, capture_batch
from .sharded import ShardedSegmentDatabase
from .workers import TASK_PHASES, ShardWorkerPool, WorkerTaskResult

__all__ = [
    "ShardBatchStats",
    "ShardWorkerPool",
    "ShardedSegmentDatabase",
    "TASK_PHASES",
    "WorkerTaskResult",
    "capture_batch",
]
