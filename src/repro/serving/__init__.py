"""Sharded parallel serving over index snapshots.

The paper's cost model prices one machine answering one query; a serving
deployment answers many queries against data partitioned across workers.
This package adds that layer without touching the engines:

* :class:`ShardedSegmentDatabase` partitions an NCT segment set into K
  x-range slabs, each an ordinary :class:`~repro.core.api.SegmentDatabase`,
  routes vertical queries to the (usually one) intersecting shard, and
  merges results duplicate-free;
* shard snapshots (:meth:`ShardedSegmentDatabase.save` /
  :meth:`ShardedSegmentDatabase.open`) make a built sharded database a
  directory of files that serving processes ``open()`` in O(pages) instead
  of rebuilding in O(N log N);
* a :class:`ShardWorkerPool` executes shard sub-batches across OS
  processes: on the shared-memory transport the parent maps each shard's
  flat page arena into POSIX shm once and warm workers attach zero-copy
  (:mod:`repro.serving.shm`); the legacy pickle transport has each
  worker open its shard snapshot once and keep it warm.  ``workers=0``
  runs the identical routing code synchronously;
* a :class:`ServeDaemon` fronts a pool-backed database with an asyncio
  socket server — request batching, bounded-queue admission control,
  per-request deadlines, structured typed error frames, a health frame,
  graceful drain — driven by ``python -m repro serve``;
* a resilience layer (:mod:`repro.serving.resilience`) keeps it
  answering under failure: a :class:`SupervisorPolicy` gives the pool
  liveness timeouts, executor respawn with shm re-attach, bounded
  jittered retries and per-shard :class:`CircuitBreaker` shedding;
  a shard lost past the retry budget degrades the batch into typed
  partial results with an accurate shard-coverage map rather than an
  exception or a silent wrong answer; and a seeded, replayable
  :class:`RpcChaosSchedule` (worker SIGKILL at named points, frame
  damage through :class:`ChaosProxy`) drives the ``chaos-serve``
  never-silently-wrong oracle in tests and CI.

See DESIGN.md §11 for how shard count and worker count interact with the
paper's per-query I/O bounds, §13 for the arena layout and the
warm-worker attach protocol, and §14 for the failure model.
"""

from .daemon import ServeClient, ServeDaemon, ServeRejected
from .reporting import ShardBatchStats, capture_batch
from .resilience import (WORKER_KILL_POINTS, ChaosProxy, CircuitBreaker,
                         RpcChaosSchedule, ServeConnectionError,
                         ShardDownError, SupervisorPolicy)
from .sharded import ShardedSegmentDatabase
from .shm import AttachedArena, SharedShardArenas, segment_name, shm_available
from .workers import TASK_PHASES, TRANSPORTS, ShardWorkerPool, WorkerTaskResult

__all__ = [
    "AttachedArena",
    "ChaosProxy",
    "CircuitBreaker",
    "RpcChaosSchedule",
    "ServeClient",
    "ServeConnectionError",
    "ServeDaemon",
    "ServeRejected",
    "ShardBatchStats",
    "ShardDownError",
    "ShardWorkerPool",
    "ShardedSegmentDatabase",
    "SharedShardArenas",
    "SupervisorPolicy",
    "TASK_PHASES",
    "TRANSPORTS",
    "WORKER_KILL_POINTS",
    "WorkerTaskResult",
    "capture_batch",
    "segment_name",
    "shm_available",
]
