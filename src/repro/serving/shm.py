"""POSIX shared-memory transport for shard arenas.

The pickle transport re-serializes nothing per batch, but every worker
still pays a full ``SegmentDatabase.open()`` — an O(shard) unpickle —
on first touch of each shard, and one process's decode work helps no
other process.  The arena format removes that tax: the parent maps each
shard's container-verified arena (:func:`~repro.iosim.read_arena`) into
one :mod:`multiprocessing.shared_memory` segment, and every worker
attaches in O(1), slicing pages zero-copy through an
:class:`~repro.iosim.ArenaView` over the segment's buffer.

Ownership protocol:

* the **parent** creates the segments (one per shard, sized exactly to
  the arena) and is the only process that ever ``unlink``s them —
  on pool shutdown or parent exit (the stdlib resource tracker backstops
  a parent that dies without cleanup);
* **workers** attach by name, *untracked* — Python's resource tracker
  would otherwise unlink a segment when the first worker exits,
  destroying it for the parent and every sibling (bpo-39959); on 3.13+
  we pass ``track=False``, earlier versions unregister after attach;
* a worker that crashes mid-batch leaks nothing: the OS drops its
  mapping, and the parent's unlink removes the name.

Segment names are deterministic — a digest of the snapshot's absolute
path plus the shard index — so a segment leaked by a crashed *parent*
(SIGKILL, no atexit) is found and reclaimed by the next pool serving
the same snapshot, instead of accumulating in ``/dev/shm``.

Reclaim is guarded by a per-snapshot **owner lock** (an ``flock`` on a
deterministic lock file): only the pool holding the lock may use the
deterministic names and reclaim colliding segments.  Without the guard,
two pools starting concurrently over the same snapshot raced — the
second's "stale" reclaim unlinked segments the first had just created
and was actively serving from.  A pool that finds the lock held falls
back to unique (pid-suffixed) segment names and never reclaims
anything.  ``flock`` rather than an ``O_EXCL`` probe file because the
kernel releases the lock when the owner dies — including SIGKILL — so a
crashed owner cannot leave a stale lock that blocks every future pool,
which is exactly the failure mode O_EXCL lock files have.  The empty
lock files themselves are never unlinked (removing one while a peer
holds its flock would let a third pool lock a fresh inode at the same
path and reintroduce the two-owners race); they are zero bytes,
deterministic, and bounded by the number of distinct snapshots.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import List, Optional, Sequence, Tuple

from ..iosim import ArenaView
from ..iosim.snapshot import read_arena

try:  # absent on platforms without POSIX shm (then transport="pickle")
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exercised only on exotic builds
    resource_tracker = None
    shared_memory = None

try:  # POSIX-only; on other platforms pools never reclaim (safe default)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None


def shm_available() -> bool:
    """Whether this platform can serve through shared memory."""
    return shared_memory is not None


def segment_name(snapshot_path: str, shard_index: int) -> str:
    """Deterministic shm segment name for one shard of one snapshot.

    Deterministic on purpose: a stale segment left by a crashed parent
    collides with the next pool's create, which reclaims it (see
    :func:`create_segment`).  Kept short — POSIX caps shm names well
    below filesystem limits on some platforms.
    """
    digest = hashlib.sha256(
        os.path.abspath(snapshot_path).encode()
    ).hexdigest()[:12]
    return f"rpr-{digest}-{shard_index}"


def owner_lock_path(snapshot_path: str) -> str:
    """The lock file whose ``flock`` holder owns this snapshot's
    deterministic segment names."""
    digest = hashlib.sha256(
        os.path.abspath(snapshot_path).encode()
    ).hexdigest()[:12]
    return os.path.join(tempfile.gettempdir(), f"rpr-{digest}.lock")


def acquire_owner_lock(snapshot_path: str) -> Optional[int]:
    """Try to become the owning pool for one snapshot's segments.

    Returns an open fd holding an exclusive non-blocking ``flock`` —
    kept for the pool's lifetime, auto-released by the kernel on any
    exit including SIGKILL — or ``None`` when a live owner exists (or
    the platform has no ``flock``), in which case the caller must use
    unique segment names and must not reclaim.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        return None
    fd = os.open(owner_lock_path(snapshot_path),
                 os.O_CREAT | os.O_RDWR, 0o600)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        os.close(fd)
        return None
    return fd


def release_owner_lock(fd: Optional[int]) -> None:
    """Release a lock from :func:`acquire_owner_lock` (idempotent-safe
    for ``None``).  Closing the fd drops the flock; the lock file stays
    (see the module docstring for why unlinking it would be a bug)."""
    if fd is None:
        return
    try:
        os.close(fd)
    except OSError:  # pragma: no cover - already closed
        pass


def attach_segment(name: str):
    """Attach to an existing segment without resource-tracker ownership.

    Attaching must never make this process responsible for the segment's
    lifetime: before 3.13 (``track=False``), plain attach *registers*
    the name with the session's resource tracker (bpo-39959), and the
    tracker's cache is shared — an unregister from a worker silently
    cancels the parent's registration for the same name, and an exiting
    worker's tracker would unlink the segment under every sibling.  So
    on older Pythons the registration is suppressed at the source.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def create_segment(name: str, size: int, allow_reclaim: bool = True):
    """Create a segment, reclaiming a stale one left by a dead parent.

    ``allow_reclaim=True`` requires the caller to hold the snapshot's
    owner lock: a colliding name then provably belongs to a dead pool
    (a live one would hold the lock) and is destroyed and recreated.
    Callers without the lock pass ``allow_reclaim=False`` — their names
    are unique by construction, so a collision is a real error, not
    staleness.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        if not allow_reclaim:
            raise
        stale = attach_segment(name)
        stale.close()
        try:
            # Balance the unlink's tracker unregister (the stale name
            # belongs to a dead process, so nobody has it registered).
            resource_tracker.register(stale._name, "shared_memory")
            stale.unlink()
        except FileNotFoundError:  # lost a race with another reclaimer
            pass
        return shared_memory.SharedMemory(name=name, create=True, size=size)


class SharedShardArenas:
    """Parent-owned shm segments holding one arena per shard.

    ``descriptors`` — ``[(segment_name, arena_size), ...]`` by shard
    index — is the only thing workers need (the segment may be page-
    rounded, so the exact arena size travels with the name).  The parent
    must call :meth:`unlink` exactly once when serving ends.
    """

    def __init__(self, segments: List, descriptors: List[Tuple[str, int]],
                 lock_fds: Optional[List[int]] = None):
        self._segments = segments
        self.descriptors = descriptors
        self._lock_fds = list(lock_fds or [])

    @classmethod
    def create(cls, shard_paths: Sequence[str]) -> "SharedShardArenas":
        """Map every shard snapshot's arena into its own segment.

        Each path is read through :func:`~repro.iosim.read_arena`, so a
        damaged file fails *here*, in the process that owns it — workers
        only ever see container-verified bytes.  Legacy v1 snapshots are
        converted to arenas once, in the parent.

        Per shard path, the owner lock decides the naming scheme: lock
        acquired → deterministic name, stale collisions reclaimed; lock
        held elsewhere (a live pool is serving the same snapshot) →
        pid-suffixed unique name, no reclaim.  Workers are indifferent —
        they attach by whatever name the descriptor carries.
        """
        if not shm_available():  # pragma: no cover - platform-dependent
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use transport='pickle'"
            )
        segments: List = []
        descriptors: List[Tuple[str, int]] = []
        lock_fds: List[int] = []
        try:
            for index, path in enumerate(shard_paths):
                arena = read_arena(path)
                lock_fd = acquire_owner_lock(path)
                if lock_fd is not None:
                    lock_fds.append(lock_fd)
                    name = segment_name(path, index)
                else:
                    name = f"{segment_name(path, index)}-{os.getpid()}"
                shm = create_segment(name, len(arena),
                                     allow_reclaim=lock_fd is not None)
                shm.buf[: len(arena)] = arena
                segments.append(shm)
                descriptors.append((shm.name, len(arena)))
        except BaseException:
            for shm in segments:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
            for fd in lock_fds:
                release_owner_lock(fd)
            raise
        return cls(segments, descriptors, lock_fds)

    @property
    def total_bytes(self) -> int:
        return sum(size for _name, size in self.descriptors)

    def unlink(self) -> None:
        """Close and destroy every segment (idempotent), then release
        the owner locks so the next pool over this snapshot can claim
        the deterministic names."""
        segments, self._segments = self._segments, []
        for shm in segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        lock_fds, self._lock_fds = self._lock_fds, []
        for fd in lock_fds:
            release_owner_lock(fd)


class AttachedArena:
    """One worker's zero-copy view of a shard arena.

    Owns the attach-side resources in release order: the
    :class:`~repro.iosim.ArenaView`'s exported slices, the sized
    buffer slice, then the segment handle — a segment cannot close while
    any memoryview over it is alive.
    """

    def __init__(self, name: str, size: int, source: str):
        self._shm = attach_segment(name)
        self._buf = self._shm.buf[:size]
        try:
            self.view = ArenaView(self._buf, source=source)
        except BaseException:
            self._buf.release()
            self._shm.close()
            raise

    def close(self) -> None:
        """Detach (idempotent-ish): live zero-copy column views over the
        arena keep the mapping pinned, so a refusing ``release`` is
        tolerated — the mapping falls away when the last view dies."""
        self.view.release()
        try:
            self._buf.release()
            self._shm.close()
        except BufferError:
            pass
