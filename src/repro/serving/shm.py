"""POSIX shared-memory transport for shard arenas.

The pickle transport re-serializes nothing per batch, but every worker
still pays a full ``SegmentDatabase.open()`` — an O(shard) unpickle —
on first touch of each shard, and one process's decode work helps no
other process.  The arena format removes that tax: the parent maps each
shard's container-verified arena (:func:`~repro.iosim.read_arena`) into
one :mod:`multiprocessing.shared_memory` segment, and every worker
attaches in O(1), slicing pages zero-copy through an
:class:`~repro.iosim.ArenaView` over the segment's buffer.

Ownership protocol:

* the **parent** creates the segments (one per shard, sized exactly to
  the arena) and is the only process that ever ``unlink``s them —
  on pool shutdown or parent exit (the stdlib resource tracker backstops
  a parent that dies without cleanup);
* **workers** attach by name, *untracked* — Python's resource tracker
  would otherwise unlink a segment when the first worker exits,
  destroying it for the parent and every sibling (bpo-39959); on 3.13+
  we pass ``track=False``, earlier versions unregister after attach;
* a worker that crashes mid-batch leaks nothing: the OS drops its
  mapping, and the parent's unlink removes the name.

Segment names are deterministic — a digest of the snapshot's absolute
path plus the shard index — so a segment leaked by a crashed *parent*
(SIGKILL, no atexit) is found and reclaimed by the next pool serving
the same snapshot, instead of accumulating in ``/dev/shm``.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Sequence, Tuple

from ..iosim import ArenaView
from ..iosim.snapshot import read_arena

try:  # absent on platforms without POSIX shm (then transport="pickle")
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exercised only on exotic builds
    resource_tracker = None
    shared_memory = None


def shm_available() -> bool:
    """Whether this platform can serve through shared memory."""
    return shared_memory is not None


def segment_name(snapshot_path: str, shard_index: int) -> str:
    """Deterministic shm segment name for one shard of one snapshot.

    Deterministic on purpose: a stale segment left by a crashed parent
    collides with the next pool's create, which reclaims it (see
    :func:`create_segment`).  Kept short — POSIX caps shm names well
    below filesystem limits on some platforms.
    """
    digest = hashlib.sha256(
        os.path.abspath(snapshot_path).encode()
    ).hexdigest()[:12]
    return f"rpr-{digest}-{shard_index}"


def attach_segment(name: str):
    """Attach to an existing segment without resource-tracker ownership.

    Attaching must never make this process responsible for the segment's
    lifetime: before 3.13 (``track=False``), plain attach *registers*
    the name with the session's resource tracker (bpo-39959), and the
    tracker's cache is shared — an unregister from a worker silently
    cancels the parent's registration for the same name, and an exiting
    worker's tracker would unlink the segment under every sibling.  So
    on older Pythons the registration is suppressed at the source.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def create_segment(name: str, size: int):
    """Create a segment, reclaiming a stale one left by a dead parent."""
    try:
        return shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        stale = attach_segment(name)
        stale.close()
        try:
            # Balance the unlink's tracker unregister (the stale name
            # belongs to a dead process, so nobody has it registered).
            resource_tracker.register(stale._name, "shared_memory")
            stale.unlink()
        except FileNotFoundError:  # lost a race with another reclaimer
            pass
        return shared_memory.SharedMemory(name=name, create=True, size=size)


class SharedShardArenas:
    """Parent-owned shm segments holding one arena per shard.

    ``descriptors`` — ``[(segment_name, arena_size), ...]`` by shard
    index — is the only thing workers need (the segment may be page-
    rounded, so the exact arena size travels with the name).  The parent
    must call :meth:`unlink` exactly once when serving ends.
    """

    def __init__(self, segments: List, descriptors: List[Tuple[str, int]]):
        self._segments = segments
        self.descriptors = descriptors

    @classmethod
    def create(cls, shard_paths: Sequence[str]) -> "SharedShardArenas":
        """Map every shard snapshot's arena into its own segment.

        Each path is read through :func:`~repro.iosim.read_arena`, so a
        damaged file fails *here*, in the process that owns it — workers
        only ever see container-verified bytes.  Legacy v1 snapshots are
        converted to arenas once, in the parent.
        """
        if not shm_available():  # pragma: no cover - platform-dependent
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use transport='pickle'"
            )
        segments: List = []
        descriptors: List[Tuple[str, int]] = []
        try:
            for index, path in enumerate(shard_paths):
                arena = read_arena(path)
                shm = create_segment(segment_name(path, index), len(arena))
                shm.buf[: len(arena)] = arena
                segments.append(shm)
                descriptors.append((shm.name, len(arena)))
        except BaseException:
            for shm in segments:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
            raise
        return cls(segments, descriptors)

    @property
    def total_bytes(self) -> int:
        return sum(size for _name, size in self.descriptors)

    def unlink(self) -> None:
        """Close and destroy every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for shm in segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


class AttachedArena:
    """One worker's zero-copy view of a shard arena.

    Owns the attach-side resources in release order: the
    :class:`~repro.iosim.ArenaView`'s exported slices, the sized
    buffer slice, then the segment handle — a segment cannot close while
    any memoryview over it is alive.
    """

    def __init__(self, name: str, size: int, source: str):
        self._shm = attach_segment(name)
        self._buf = self._shm.buf[:size]
        try:
            self.view = ArenaView(self._buf, source=source)
        except BaseException:
            self._buf.release()
            self._shm.close()
            raise

    def close(self) -> None:
        self.view.release()
        self._buf.release()
        self._shm.close()
