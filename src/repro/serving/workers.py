"""Multi-process batch execution over shard snapshots.

Each worker process holds a module-level cache of opened shards: the first
task touching shard ``i`` pays the ``SegmentDatabase.open()`` cost once,
and every later task against that shard reuses the warm instance (buffer
pool contents included).  Workers ship back the query results *and* the
I/O-counter diff of the batch, so the parent's aggregated telemetry sums
to exactly what a single-process run would have charged.

Everything that crosses the process boundary — queries, segments,
:class:`~repro.iosim.stats.IOStats`,
:class:`~repro.telemetry.ExplainReport` — is plain picklable data; the
page store itself never moves, each worker reads it from the snapshot
file.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import VerticalQuery
from ..iosim import IOStats

# Per-process state, set by the pool initializer and filled lazily.
_SHARD_PATHS: Optional[List[str]] = None
_BUFFER_PAGES: Optional[int] = None
_OPENED: Dict[int, object] = {}


def _init_worker(shard_paths: List[str], buffer_pages: Optional[int]) -> None:
    global _SHARD_PATHS, _BUFFER_PAGES
    _SHARD_PATHS = list(shard_paths)
    _BUFFER_PAGES = buffer_pages
    _OPENED.clear()


def _shard(index: int):
    """The worker's warm database for shard ``index`` (opened on first use)."""
    db = _OPENED.get(index)
    if db is None:
        from ..core.api import SegmentDatabase

        db = SegmentDatabase.open(_SHARD_PATHS[index],
                                  buffer_pages=_BUFFER_PAGES)
        _OPENED[index] = db
    return db


def _run_query_batch(index: int, queries: Sequence[VerticalQuery]) -> Tuple:
    db = _shard(index)
    before = db.io_stats()
    results = db.query_batch(queries)
    return results, db.io_stats() - before


def _run_explain_batch(index: int, queries: Sequence[VerticalQuery]) -> Tuple:
    db = _shard(index)
    before = db.io_stats()
    report = db.explain_batch(queries)
    return report, db.io_stats() - before


class ShardWorkerPool:
    """A process pool executing per-shard sub-batches.

    The pool is engine-agnostic: it only knows shard snapshot paths.  Its
    two entry points mirror the private execution hooks of
    :class:`~repro.serving.sharded.ShardedSegmentDatabase`, taking a
    ``{shard_index: queries}`` mapping and returning
    ``{shard_index: (payload, IOStats)}``.
    """

    def __init__(self, shard_paths: Sequence[str], workers: int,
                 buffer_pages: Optional[int] = None):
        if workers < 1:
            raise ValueError("ShardWorkerPool needs workers >= 1 "
                             "(use the synchronous path for workers=0)")
        self._paths = list(shard_paths)
        self.workers = workers
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self._paths, buffer_pages),
        )

    def query_batches(
        self, batches: Dict[int, List[VerticalQuery]]
    ) -> Dict[int, Tuple[List, IOStats]]:
        return self._gather(_run_query_batch, batches)

    def explain_batches(
        self, batches: Dict[int, List[VerticalQuery]]
    ) -> Dict[int, Tuple[object, IOStats]]:
        return self._gather(_run_explain_batch, batches)

    def _gather(self, fn, batches: Dict[int, List[VerticalQuery]]) -> Dict:
        futures = {
            index: self._executor.submit(fn, index, queries)
            for index, queries in batches.items()
        }
        return {index: future.result() for index, future in futures.items()}

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
