"""Multi-process batch execution over shard snapshots.

Each worker process holds a module-level cache of opened shards: the first
task touching shard ``i`` pays the ``SegmentDatabase.open()`` cost once,
and every later task against that shard reuses the warm instance (buffer
pool contents included).  Workers ship back the query results *and* a
:class:`~repro.serving.reporting.ShardBatchStats` telemetry delta, so the
parent's aggregated report sums to exactly what a single-process run
would have charged — buffer, filter and fault sub-counters included.

Latency observability (the E17 cliff, made visible).  The worker protocol
pickles the batch payload *explicitly*: the parent times ``dumps`` on the
way out, the worker times ``loads``/``dumps`` around its work, and the
parent times the final ``loads`` — so the serialization tax that the
``ProcessPoolExecutor`` machinery normally hides becomes four measured
phases.  Every task carries a :class:`~repro.telemetry.SpanContext`; the
worker opens a :class:`~repro.telemetry.WallTracer` that *continues the
parent's trace id* and records timed spans for

* ``deserialize`` — unpickling the query batch,
* ``attach``      — cold-opening the shard snapshot (first touch only),
* ``query``       — the engine work proper,
* ``serialize``   — pickling the results,

and the parent derives the boundary-crossing phases from the shared
epoch clock: ``dispatch`` (submit → worker start, argument pickling
included) and ``collect`` (worker end → result in hand).  The six phases
sum to the parent-observed task wall-clock by construction, which is the
identity the E17 decomposition asserts.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..iosim import IOStats
from ..telemetry import SpanContext, WallTracer, spans as wallspans
from .reporting import ShardBatchStats, capture_batch

#: Phase names of one pooled task, in timeline order.
TASK_PHASES = ("dispatch", "deserialize", "attach", "query", "serialize",
               "collect")

# Per-process state, set by the pool initializer and filled lazily.
_SHARD_PATHS: Optional[List[str]] = None
_BUFFER_PAGES: Optional[int] = None
_SLOW_QUERY_S: Optional[float] = None
_OPENED: Dict[int, object] = {}


def _init_worker(shard_paths: List[str], buffer_pages: Optional[int],
                 slow_query_s: Optional[float]) -> None:
    global _SHARD_PATHS, _BUFFER_PAGES, _SLOW_QUERY_S
    _SHARD_PATHS = list(shard_paths)
    _BUFFER_PAGES = buffer_pages
    _SLOW_QUERY_S = slow_query_s
    _OPENED.clear()


def _open_shard(index: int):
    from ..core.api import SegmentDatabase

    db = SegmentDatabase.open(_SHARD_PATHS[index], buffer_pages=_BUFFER_PAGES)
    if _SLOW_QUERY_S is not None:
        db.enable_slow_query_log(_SLOW_QUERY_S)
    return db


def _run_task(kind: str, index: int, payload: bytes,
              span_ctx: Optional[dict]) -> dict:
    """Execute one shard batch in a worker; returns the wire response.

    ``kind`` is ``"query"`` or ``"explain"``; ``payload`` is the pickled
    query list.  The response dict is plain picklable data: the pickled
    result payload, the telemetry delta, the worker's span records
    (carrying the parent's trace id), slow-query-log entries, and the
    epoch timestamps the parent needs to derive dispatch/collect.
    """
    started = time.time()
    ctx = SpanContext.from_dict(span_ctx)
    tracer = (WallTracer(ctx.trace_id, ctx.parent_id) if ctx is not None
              else WallTracer())

    with tracer.span("deserialize", category="ipc", shard=index,
                     bytes=len(payload)):
        queries = pickle.loads(payload)

    db = _OPENED.get(index)
    if db is None:
        with tracer.span("attach", category="snapshot", shard=index,
                         path=os.path.basename(_SHARD_PATHS[index])):
            db = _open_shard(index)
        _OPENED[index] = db

    runner = (db.query_batch if kind == "query" else db.explain_batch)
    with tracer.span("query", category="engine", shard=index,
                     queries=len(queries)):
        result, stats = capture_batch(db, lambda: runner(queries))

    with tracer.span("serialize", category="ipc", shard=index):
        result_payload = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)

    slow_entries = db.slow_log.drain() if db.slow_log is not None else []
    return {
        "payload": result_payload,
        "stats": stats,
        "spans": tracer.to_dicts(),
        "phases": tracer.by_name(),
        "slow_log": slow_entries,
        "pid": os.getpid(),
        "started": started,
        "ended": time.time(),
    }


@dataclass
class WorkerTaskResult:
    """One shard batch's results plus its full latency/telemetry record."""

    payload: object                 # query results or an ExplainReport
    stats: ShardBatchStats          # telemetry delta (io, buffer, filter, …)
    phases: Dict[str, float] = field(default_factory=dict)  # seconds by phase
    wall_s: float = 0.0             # parent-observed task wall-clock
    worker_pid: Optional[int] = None
    slow_log: List[dict] = field(default_factory=list)

    @property
    def io(self) -> IOStats:
        return self.stats.io


class ShardWorkerPool:
    """A process pool executing per-shard sub-batches.

    The pool is engine-agnostic: it only knows shard snapshot paths.  Its
    two entry points mirror the private execution hooks of
    :class:`~repro.serving.sharded.ShardedSegmentDatabase`, taking a
    ``{shard_index: queries}`` mapping and returning
    ``{shard_index: WorkerTaskResult}``.

    When a :func:`~repro.telemetry.wall_tracing` tracer is installed in
    the parent, every task inherits its trace id; worker spans are
    adopted back into the parent tracer together with synthetic
    ``dispatch``/``collect`` spans for the boundary crossings, so one
    Chrome-trace export shows the whole multi-process timeline.
    """

    def __init__(self, shard_paths: Sequence[str], workers: int,
                 buffer_pages: Optional[int] = None,
                 slow_query_s: Optional[float] = None):
        if workers < 1:
            raise ValueError("ShardWorkerPool needs workers >= 1 "
                             "(use the synchronous path for workers=0)")
        self._paths = list(shard_paths)
        self.workers = workers
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self._paths, buffer_pages, slow_query_s),
        )

    def query_batches(self, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        return self._gather("query", batches)

    def explain_batches(self, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        return self._gather("explain", batches)

    def _gather(self, kind: str, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        tracer = wallspans.active()
        pending = {}
        for index, queries in batches.items():
            ctx = tracer.context().to_dict() if tracer is not None else None
            t0 = perf_counter()
            payload = pickle.dumps(list(queries), pickle.HIGHEST_PROTOCOL)
            pickle_s = perf_counter() - t0
            submitted = time.time()
            future = self._executor.submit(_run_task, kind, index, payload, ctx)
            pending[index] = (future, submitted, pickle_s)

        out: Dict[int, WorkerTaskResult] = {}
        for index, (future, submitted, pickle_s) in pending.items():
            raw = future.result()
            t0 = perf_counter()
            payload = pickle.loads(raw["payload"])
            unpickle_s = perf_counter() - t0
            done = time.time()
            # Boundary-crossing phases from the shared epoch clock
            # (same-host processes; negative residues are clock noise).
            dispatch_s = max(0.0, raw["started"] - submitted) + pickle_s
            collect_s = max(0.0, done - raw["ended"]) + unpickle_s
            phases = {"dispatch": dispatch_s, "collect": collect_s}
            phases.update(raw["phases"])
            wall_s = pickle_s + max(0.0, done - submitted) + unpickle_s
            if tracer is not None:
                tracer.add("dispatch", submitted - pickle_s, dispatch_s,
                           category="ipc", shard=index)
                tracer.extend(raw["spans"])
                tracer.add("collect", raw["ended"], collect_s,
                           category="ipc", shard=index)
            out[index] = WorkerTaskResult(
                payload=payload,
                stats=raw["stats"],
                phases=phases,
                wall_s=wall_s,
                worker_pid=raw["pid"],
                slow_log=raw["slow_log"],
            )
        return out

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
