"""Multi-process batch execution over shard snapshots.

Each worker process is *warm*: it holds a module-level cache of attached
shards, so the first task touching shard ``i`` pays the attach cost once
and every later task reuses the live instance — buffer pool contents,
decoded pages and all.  Workers ship back the query results *and* a
:class:`~repro.serving.reporting.ShardBatchStats` telemetry delta, so the
parent's aggregated report sums to exactly what a single-process run
would have charged — buffer, filter and fault sub-counters included.

Two transports share the task protocol:

* ``"shm"`` (default) — the parent maps each shard's flat arena into a
  POSIX shared-memory segment once (:mod:`repro.serving.shm`); a worker
  attaches in O(1) via :class:`~repro.iosim.ArenaView` and serves
  through an :class:`~repro.iosim.ArenaBlockDevice`, decoding pages
  lazily out of the shared bytes into a bounded per-worker LRU.  No
  per-process snapshot unpickle, no per-batch state transfer.
* ``"pickle"`` — the PR 5 behavior, kept for comparison (benchmark E18)
  and platforms without shared memory: each worker cold-opens the
  snapshot file, paying a full O(shard) deserialization per process.

Latency observability (the E17 cliff, made visible).  The worker protocol
serializes the batch payload *explicitly*: the parent times ``dumps`` on
the way out, the worker times ``loads``/``dumps`` around its work, and
the parent times the final ``loads`` — so the serialization tax that the
``ProcessPoolExecutor`` machinery normally hides becomes four measured
phases.  Worker responses are *encoded* exactly once: the serialize
phase pickles the results with protocol 5, extracting buffer-protocol
objects out-of-band, and the executor hop then carries opaque bytes it
can only memcpy — the old double encoding (results pickled inside a
response that gets pickled again) is gone.  Every task carries a
:class:`~repro.telemetry.SpanContext`; the
worker opens a :class:`~repro.telemetry.WallTracer` that *continues the
parent's trace id* and records timed spans for

* ``deserialize`` — unpickling the query batch,
* ``attach``      — first touch of the shard (shm: O(1) arena attach;
  pickle: the full snapshot open),
* ``query``       — the engine work proper,
* ``serialize``   — pickling the results,

and the parent derives the boundary-crossing phases from the shared
epoch clock: ``dispatch`` (submit → worker start, argument pickling
included) and ``collect`` (worker end → result in hand).  The six phases
sum to the parent-observed task wall-clock by construction, which is the
identity the E17/E18 decompositions assert.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..iosim import ArenaBlockDevice, IOStats, restricted_loads
from ..telemetry import SpanContext, WallTracer, spans as wallspans
from .reporting import ShardBatchStats, capture_batch
from .shm import AttachedArena, SharedShardArenas, shm_available

#: Phase names of one pooled task, in timeline order.
TASK_PHASES = ("dispatch", "deserialize", "attach", "query", "serialize",
               "collect")

#: Transports a pool can run on.
TRANSPORTS = ("shm", "pickle")

# Per-process state, set by the pool initializer and filled lazily.
_TRANSPORT: str = "pickle"
_SHARD_PATHS: Optional[List[str]] = None
_SEGMENTS: Optional[List[Tuple[str, int]]] = None
_BUFFER_PAGES: Optional[int] = None
_SLOW_QUERY_S: Optional[float] = None
_CACHE_PAGES: Optional[int] = None
_OPENED: Dict[int, object] = {}
_ATTACHED: Dict[int, AttachedArena] = {}


def _detach_all() -> None:
    """Worker exit hook: drop every shm attachment cleanly.

    Releasing the memoryviews before closing the segments is mandatory —
    a segment with exported buffers cannot unmap — and closing them at
    all keeps worker exit silent under the resource tracker.
    """
    _OPENED.clear()
    for arena in list(_ATTACHED.values()):
        try:
            arena.close()
        except BufferError:  # a live db still holds pages; OS cleans up
            pass
    _ATTACHED.clear()


def _init_worker(transport: str, shard_paths: List[str],
                 segments: Optional[List[Tuple[str, int]]],
                 buffer_pages: Optional[int],
                 slow_query_s: Optional[float],
                 cache_pages: Optional[int]) -> None:
    global _TRANSPORT, _SHARD_PATHS, _SEGMENTS, _BUFFER_PAGES
    global _SLOW_QUERY_S, _CACHE_PAGES
    _TRANSPORT = transport
    _SHARD_PATHS = list(shard_paths)
    _SEGMENTS = list(segments) if segments is not None else None
    _BUFFER_PAGES = buffer_pages
    _SLOW_QUERY_S = slow_query_s
    _CACHE_PAGES = cache_pages
    _OPENED.clear()
    _ATTACHED.clear()
    atexit.register(_detach_all)


def _open_shard(index: int):
    from ..core.api import SegmentDatabase

    if _TRANSPORT == "shm":
        name, size = _SEGMENTS[index]
        arena = AttachedArena(name, size, source=f"shm://{name}")
        _ATTACHED[index] = arena
        device = ArenaBlockDevice(arena.view, cache_pages=_CACHE_PAGES)
        db = SegmentDatabase.attach_device(
            device, arena.view.meta, buffer_pages=_BUFFER_PAGES,
            source=f"shm://{name}",
        )
    else:
        db = SegmentDatabase.open(_SHARD_PATHS[index],
                                  buffer_pages=_BUFFER_PAGES)
    if _SLOW_QUERY_S is not None:
        db.enable_slow_query_log(_SLOW_QUERY_S)
    return db


def _run_task(kind: str, index: int, payload: bytes,
              span_ctx: Optional[dict]) -> dict:
    """Execute one shard batch in a worker; returns the wire response.

    ``kind`` is ``"query"`` or ``"explain"``; ``payload`` is the pickled
    query list.  The response dict is plain picklable data: the result
    payload (protocol-5 bytes plus its out-of-band buffers, both wrapped
    in :class:`pickle.PickleBuffer` so the executor's pickling pass
    appends rather than re-encodes them), the telemetry delta, the
    worker's span records (carrying the parent's trace id), slow-query-
    log entries, and the epoch timestamps the parent needs to derive
    dispatch/collect.
    """
    started = time.time()
    ctx = SpanContext.from_dict(span_ctx)
    tracer = (WallTracer(ctx.trace_id, ctx.parent_id) if ctx is not None
              else WallTracer())

    with tracer.span("deserialize", category="ipc", shard=index,
                     bytes=len(payload)):
        queries = pickle.loads(payload)

    db = _OPENED.get(index)
    if db is None:
        with tracer.span("attach", category="snapshot", shard=index,
                         transport=_TRANSPORT,
                         path=os.path.basename(_SHARD_PATHS[index])):
            db = _open_shard(index)
        _OPENED[index] = db

    runner = (db.query_batch if kind == "query" else db.explain_batch)
    with tracer.span("query", category="engine", shard=index,
                     queries=len(queries)):
        result, stats = capture_batch(db, lambda: runner(queries))

    with tracer.span("serialize", category="ipc", shard=index):
        buffers: List[pickle.PickleBuffer] = []
        result_payload = pickle.dumps(result, protocol=5,
                                      buffer_callback=buffers.append)

    slow_entries = db.slow_log.drain() if db.slow_log is not None else []
    return {
        "payload": result_payload,
        "buffers": [bytes(b.raw()) for b in buffers],
        "stats": stats,
        "spans": tracer.to_dicts(),
        "phases": tracer.by_name(),
        "slow_log": slow_entries,
        "pid": os.getpid(),
        "started": started,
        "ended": time.time(),
    }


@dataclass
class WorkerTaskResult:
    """One shard batch's results plus its full latency/telemetry record."""

    payload: object                 # query results or an ExplainReport
    stats: ShardBatchStats          # telemetry delta (io, buffer, filter, …)
    phases: Dict[str, float] = field(default_factory=dict)  # seconds by phase
    wall_s: float = 0.0             # parent-observed task wall-clock
    worker_pid: Optional[int] = None
    slow_log: List[dict] = field(default_factory=list)

    @property
    def io(self) -> IOStats:
        return self.stats.io


class ShardWorkerPool:
    """A process pool executing per-shard sub-batches.

    The pool is engine-agnostic: it only knows shard snapshot paths.  Its
    two entry points mirror the private execution hooks of
    :class:`~repro.serving.sharded.ShardedSegmentDatabase`, taking a
    ``{shard_index: queries}`` mapping and returning
    ``{shard_index: WorkerTaskResult}``.  Shards whose sub-batch is
    empty never cross the process boundary at all — no pickling, no
    executor submit, an immediately-empty result.

    ``transport="shm"`` (the default where available) maps every shard
    arena into shared memory up front and workers attach zero-copy;
    ``transport="pickle"`` is the legacy per-process snapshot open.  The
    parent owns the segments: :meth:`shutdown` (or the context manager)
    unlinks them after the workers drain, including when a worker
    crashed mid-batch.

    When a :func:`~repro.telemetry.wall_tracing` tracer is installed in
    the parent, every task inherits its trace id; worker spans are
    adopted back into the parent tracer together with synthetic
    ``dispatch``/``collect`` spans for the boundary crossings, so one
    Chrome-trace export shows the whole multi-process timeline.
    """

    def __init__(self, shard_paths: Sequence[str], workers: int,
                 buffer_pages: Optional[int] = None,
                 slow_query_s: Optional[float] = None,
                 transport: str = "shm",
                 cache_pages: Optional[int] = None):
        if workers < 1:
            raise ValueError("ShardWorkerPool needs workers >= 1 "
                             "(use the synchronous path for workers=0)")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"pick one of {TRANSPORTS}")
        if transport == "shm" and not shm_available():  # pragma: no cover
            transport = "pickle"
        self._paths = list(shard_paths)
        self.workers = workers
        self.transport = transport
        self._arenas: Optional[SharedShardArenas] = None
        segments = None
        if transport == "shm":
            self._arenas = SharedShardArenas.create(self._paths)
            segments = self._arenas.descriptors
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(transport, self._paths, segments, buffer_pages,
                          slow_query_s, cache_pages),
            )
        except BaseException:
            if self._arenas is not None:
                self._arenas.unlink()
            raise

    @property
    def shared_bytes(self) -> int:
        """Total shm bytes this pool mapped (0 on the pickle transport)."""
        return self._arenas.total_bytes if self._arenas is not None else 0

    def query_batches(self, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        return self._gather("query", batches)

    def explain_batches(self, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        return self._gather("explain", batches)

    def _gather(self, kind: str, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        tracer = wallspans.active()
        out: Dict[int, WorkerTaskResult] = {}
        pending = {}
        for index, queries in batches.items():
            if not queries:
                # An empty sub-batch answers itself: an empty result and
                # a zero telemetry delta, no worker round-trip.  Explain
                # omits the shard entirely (its report enumerates only
                # shards that did work).
                if kind == "query":
                    out[index] = WorkerTaskResult(payload=[],
                                                  stats=ShardBatchStats())
                continue
            ctx = tracer.context().to_dict() if tracer is not None else None
            t0 = perf_counter()
            payload = pickle.dumps(list(queries), pickle.HIGHEST_PROTOCOL)
            pickle_s = perf_counter() - t0
            submitted = time.time()
            future = self._executor.submit(_run_task, kind, index, payload, ctx)
            pending[index] = (future, submitted, pickle_s)

        for index, (future, submitted, pickle_s) in pending.items():
            raw = future.result()
            t0 = perf_counter()
            payload = restricted_loads(raw["payload"],
                                       buffers=raw["buffers"] or None)
            unpickle_s = perf_counter() - t0
            done = time.time()
            # Boundary-crossing phases from the shared epoch clock
            # (same-host processes; negative residues are clock noise).
            dispatch_s = max(0.0, raw["started"] - submitted) + pickle_s
            collect_s = max(0.0, done - raw["ended"]) + unpickle_s
            phases = {"dispatch": dispatch_s, "collect": collect_s}
            phases.update(raw["phases"])
            wall_s = pickle_s + max(0.0, done - submitted) + unpickle_s
            if tracer is not None:
                tracer.add("dispatch", submitted - pickle_s, dispatch_s,
                           category="ipc", shard=index)
                tracer.extend(raw["spans"])
                tracer.add("collect", raw["ended"], collect_s,
                           category="ipc", shard=index)
            out[index] = WorkerTaskResult(
                payload=payload,
                stats=raw["stats"],
                phases=phases,
                wall_s=wall_s,
                worker_pid=raw["pid"],
                slow_log=raw["slow_log"],
            )
        return out

    def shutdown(self) -> None:
        """Drain the workers, then destroy the shared segments.

        Order matters: segments unlink only after every worker had its
        chance to detach.  A worker that already crashed holds no
        mapping (the OS dropped it), so the unlink is safe — and
        unconditional, so a broken pool never leaks ``/dev/shm``.
        """
        try:
            self._executor.shutdown(wait=True)
        finally:
            if self._arenas is not None:
                self._arenas.unlink()
                self._arenas = None

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
