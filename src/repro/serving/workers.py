"""Multi-process batch execution over shard snapshots.

Each worker process is *warm*: it holds a module-level cache of attached
shards, so the first task touching shard ``i`` pays the attach cost once
and every later task reuses the live instance — buffer pool contents,
decoded pages and all.  Workers ship back the query results *and* a
:class:`~repro.serving.reporting.ShardBatchStats` telemetry delta, so the
parent's aggregated report sums to exactly what a single-process run
would have charged — buffer, filter and fault sub-counters included.

Two transports share the task protocol:

* ``"shm"`` (default) — the parent maps each shard's flat arena into a
  POSIX shared-memory segment once (:mod:`repro.serving.shm`); a worker
  attaches in O(1) via :class:`~repro.iosim.ArenaView` and serves
  through an :class:`~repro.iosim.ArenaBlockDevice`, decoding pages
  lazily out of the shared bytes into a bounded per-worker LRU.  No
  per-process snapshot unpickle, no per-batch state transfer.
* ``"pickle"`` — the PR 5 behavior, kept for comparison (benchmark E18)
  and platforms without shared memory: each worker cold-opens the
  snapshot file, paying a full O(shard) deserialization per process.

Latency observability (the E17 cliff, made visible).  The worker protocol
serializes the batch payload *explicitly*: the parent times ``dumps`` on
the way out, the worker times ``loads``/``dumps`` around its work, and
the parent times the final ``loads`` — so the serialization tax that the
``ProcessPoolExecutor`` machinery normally hides becomes four measured
phases.  Worker responses are *encoded* exactly once: the serialize
phase pickles the results with protocol 5, extracting buffer-protocol
objects out-of-band, and the executor hop then carries opaque bytes it
can only memcpy — the old double encoding (results pickled inside a
response that gets pickled again) is gone.  Every task carries a
:class:`~repro.telemetry.SpanContext`; the
worker opens a :class:`~repro.telemetry.WallTracer` that *continues the
parent's trace id* and records timed spans for

* ``deserialize`` — unpickling the query batch,
* ``attach``      — first touch of the shard (shm: O(1) arena attach;
  pickle: the full snapshot open),
* ``query``       — the engine work proper,
* ``serialize``   — pickling the results,

and the parent derives the boundary-crossing phases from the shared
epoch clock: ``dispatch`` (submit → worker start, argument pickling
included) and ``collect`` (worker end → result in hand).  The six phases
sum to the parent-observed task wall-clock by construction, which is the
identity the E17/E18 decompositions assert.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from random import Random
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..iosim import ArenaBlockDevice, IOStats, restricted_loads
from ..telemetry import SpanContext, WallTracer, spans as wallspans
from .reporting import ShardBatchStats, capture_batch
from .resilience import (CircuitBreaker, RpcChaosSchedule, SupervisorPolicy,
                         chaos_kill_point)
from .shm import AttachedArena, SharedShardArenas, shm_available

#: Phase names of one pooled task, in timeline order.
TASK_PHASES = ("dispatch", "deserialize", "attach", "query", "serialize",
               "collect")

#: Transports a pool can run on.
TRANSPORTS = ("shm", "pickle")

#: Sentinel: "no supervisor argument given" — distinct from an explicit
#: ``supervisor=None``, which opts back into the legacy raise-through
#: failure surface.  Exposed so wrappers (sharded open, the daemon CLI)
#: can forward "use the default" without constructing a policy.
_DEFAULT_SUPERVISOR = SupervisorPolicy()

# Per-process state, set by the pool initializer and filled lazily.
_TRANSPORT: str = "pickle"
_SHARD_PATHS: Optional[List[str]] = None
_SEGMENTS: Optional[List[Tuple[str, int]]] = None
_BUFFER_PAGES: Optional[int] = None
_SLOW_QUERY_S: Optional[float] = None
_CACHE_PAGES: Optional[int] = None
_OPENED: Dict[int, object] = {}
_ATTACHED: Dict[int, AttachedArena] = {}


def _detach_all() -> None:
    """Worker exit hook: drop every shm attachment cleanly.

    Releasing the memoryviews before closing the segments is mandatory —
    a segment with exported buffers cannot unmap — and closing them at
    all keeps worker exit silent under the resource tracker.
    """
    _OPENED.clear()
    for arena in list(_ATTACHED.values()):
        try:
            arena.close()
        except BufferError:  # a live db still holds pages; OS cleans up
            pass
    _ATTACHED.clear()


def _init_worker(transport: str, shard_paths: List[str],
                 segments: Optional[List[Tuple[str, int]]],
                 buffer_pages: Optional[int],
                 slow_query_s: Optional[float],
                 cache_pages: Optional[int]) -> None:
    global _TRANSPORT, _SHARD_PATHS, _SEGMENTS, _BUFFER_PAGES
    global _SLOW_QUERY_S, _CACHE_PAGES
    _TRANSPORT = transport
    _SHARD_PATHS = list(shard_paths)
    _SEGMENTS = list(segments) if segments is not None else None
    _BUFFER_PAGES = buffer_pages
    _SLOW_QUERY_S = slow_query_s
    _CACHE_PAGES = cache_pages
    _OPENED.clear()
    _ATTACHED.clear()
    atexit.register(_detach_all)


def _open_shard(index: int):
    from ..core.api import SegmentDatabase

    if _TRANSPORT == "shm":
        name, size = _SEGMENTS[index]
        arena = AttachedArena(name, size, source=f"shm://{name}")
        _ATTACHED[index] = arena
        device = ArenaBlockDevice(arena.view, cache_pages=_CACHE_PAGES)
        db = SegmentDatabase.attach_device(
            device, arena.view.meta, buffer_pages=_BUFFER_PAGES,
            source=f"shm://{name}",
        )
    else:
        db = SegmentDatabase.open(_SHARD_PATHS[index],
                                  buffer_pages=_BUFFER_PAGES)
    if _SLOW_QUERY_S is not None:
        db.enable_slow_query_log(_SLOW_QUERY_S)
    return db


def _run_task(kind: str, index: int, payload: bytes,
              span_ctx: Optional[dict],
              chaos_kill: Optional[str] = None) -> dict:
    """Execute one shard batch in a worker; returns the wire response.

    ``kind`` is ``"query"`` or ``"explain"``; ``payload`` is the pickled
    query list.  The response dict is plain picklable data: the result
    payload (protocol-5 bytes plus its out-of-band buffers, both wrapped
    in :class:`pickle.PickleBuffer` so the executor's pickling pass
    appends rather than re-encodes them), the telemetry delta, the
    worker's span records (carrying the parent's trace id), slow-query-
    log entries, and the epoch timestamps the parent needs to derive
    dispatch/collect.

    ``chaos_kill`` is a named kill point from
    :data:`~repro.serving.resilience.WORKER_KILL_POINTS` (or ``None``):
    the parent tags the task per its :class:`RpcChaosSchedule` and the
    worker SIGKILLs itself at that point — an abrupt death the executor
    sees exactly as a real OOM-kill or segfault.
    """
    started = time.time()
    chaos_kill_point("worker.start", chaos_kill)
    ctx = SpanContext.from_dict(span_ctx)
    tracer = (WallTracer(ctx.trace_id, ctx.parent_id) if ctx is not None
              else WallTracer())

    with tracer.span("deserialize", category="ipc", shard=index,
                     bytes=len(payload)):
        queries = pickle.loads(payload)

    db = _OPENED.get(index)
    if db is None:
        with tracer.span("attach", category="snapshot", shard=index,
                         transport=_TRANSPORT,
                         path=os.path.basename(_SHARD_PATHS[index])):
            db = _open_shard(index)
        _OPENED[index] = db
    chaos_kill_point("worker.after-attach", chaos_kill)

    runner = (db.query_batch if kind == "query" else db.explain_batch)
    with tracer.span("query", category="engine", shard=index,
                     queries=len(queries)):
        chaos_kill_point("worker.mid-query", chaos_kill)
        result, stats = capture_batch(db, lambda: runner(queries))

    with tracer.span("serialize", category="ipc", shard=index):
        buffers: List[pickle.PickleBuffer] = []
        result_payload = pickle.dumps(result, protocol=5,
                                      buffer_callback=buffers.append)

    slow_entries = db.slow_log.drain() if db.slow_log is not None else []
    chaos_kill_point("worker.before-reply", chaos_kill)
    return {
        "payload": result_payload,
        "buffers": [bytes(b.raw()) for b in buffers],
        "stats": stats,
        "spans": tracer.to_dicts(),
        "phases": tracer.by_name(),
        "slow_log": slow_entries,
        "pid": os.getpid(),
        "started": started,
        "ended": time.time(),
    }


@dataclass
class WorkerTaskResult:
    """One shard batch's results plus its full latency/telemetry record.

    A shard that could not serve (supervision exhausted its retries or
    the circuit is open) still yields a result — with ``payload=None``,
    ``failure`` naming the kind (``"worker-died"`` / ``"timeout"`` /
    ``"circuit-open"``), and ``error`` carrying the detail — so the
    caller can degrade per shard instead of losing the whole batch.
    ``ok`` is the uniform health check.
    """

    payload: object                 # query results or an ExplainReport
    stats: ShardBatchStats          # telemetry delta (io, buffer, filter, …)
    phases: Dict[str, float] = field(default_factory=dict)  # seconds by phase
    wall_s: float = 0.0             # parent-observed task wall-clock
    worker_pid: Optional[int] = None
    slow_log: List[dict] = field(default_factory=list)
    failure: Optional[str] = None   # None when served; else the failure kind
    error: Optional[str] = None     # human-readable failure detail
    attempts: int = 1               # submissions consumed (retries included)

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def io(self) -> IOStats:
        return self.stats.io


class ShardWorkerPool:
    """A process pool executing per-shard sub-batches.

    The pool is engine-agnostic: it only knows shard snapshot paths.  Its
    two entry points mirror the private execution hooks of
    :class:`~repro.serving.sharded.ShardedSegmentDatabase`, taking a
    ``{shard_index: queries}`` mapping and returning
    ``{shard_index: WorkerTaskResult}``.  Shards whose sub-batch is
    empty never cross the process boundary at all — no pickling, no
    executor submit, an immediately-empty result.

    ``transport="shm"`` (the default where available) maps every shard
    arena into shared memory up front and workers attach zero-copy;
    ``transport="pickle"`` is the legacy per-process snapshot open.  The
    parent owns the segments: :meth:`shutdown` (or the context manager)
    unlinks them after the workers drain, including when a worker
    crashed mid-batch.

    When a :func:`~repro.telemetry.wall_tracing` tracer is installed in
    the parent, every task inherits its trace id; worker spans are
    adopted back into the parent tracer together with synthetic
    ``dispatch``/``collect`` spans for the boundary crossings, so one
    Chrome-trace export shows the whole multi-process timeline.

    **Supervision** (default-on).  A worker that dies or hangs breaks
    every pending future in the executor — unsupervised, that surfaced
    as a raw ``BrokenProcessPool`` to the caller.  With a
    :class:`~repro.serving.resilience.SupervisorPolicy` the pool instead
    respawns a fresh executor (the parent-owned shm segments survive, so
    workers re-attach zero-copy in O(1)) and resubmits only the failed
    sub-batches, with exponential backoff plus seeded jitter, up to
    ``max_retries`` rounds.  Retries exhausted — or a per-shard
    :class:`~repro.serving.resilience.CircuitBreaker` open — yield a
    *failure-shaped* :class:`WorkerTaskResult` (``ok == False``) rather
    than an exception, so the caller degrades shard-by-shard.  Pass
    ``supervisor=None`` for the legacy raise-through behavior.  A fault-
    free batch takes exactly the legacy code path — same submission
    order, same collection math — so results and telemetry stay
    bit-identical with supervision enabled.

    ``chaos`` accepts an
    :class:`~repro.serving.resilience.RpcChaosSchedule`; each submission
    consults it in the parent (deterministic, replayable) and tags the
    task with a kill point the worker honors via SIGKILL.
    """

    def __init__(self, shard_paths: Sequence[str], workers: int,
                 buffer_pages: Optional[int] = None,
                 slow_query_s: Optional[float] = None,
                 transport: str = "shm",
                 cache_pages: Optional[int] = None,
                 supervisor: Optional[SupervisorPolicy] = _DEFAULT_SUPERVISOR,
                 chaos: Optional[RpcChaosSchedule] = None):
        if workers < 1:
            raise ValueError("ShardWorkerPool needs workers >= 1 "
                             "(use the synchronous path for workers=0)")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"pick one of {TRANSPORTS}")
        if transport == "shm" and not shm_available():  # pragma: no cover
            transport = "pickle"
        if supervisor is _DEFAULT_SUPERVISOR:
            supervisor = SupervisorPolicy()
        self._paths = list(shard_paths)
        self.workers = workers
        self.transport = transport
        self.supervisor = supervisor
        self.chaos = chaos
        self._retry_rng = Random(supervisor.seed) if supervisor else Random(0)
        self._breakers: Dict[int, CircuitBreaker] = {}
        self.respawns = 0
        self.retried_tasks = 0
        self.failed_tasks = 0
        self.shed_tasks = 0
        self._arenas: Optional[SharedShardArenas] = None
        segments = None
        if transport == "shm":
            self._arenas = SharedShardArenas.create(self._paths)
            segments = self._arenas.descriptors
        self._initargs = (transport, self._paths, segments, buffer_pages,
                          slow_query_s, cache_pages)
        try:
            self._executor = self._spawn_executor()
        except BaseException:
            if self._arenas is not None:
                self._arenas.unlink()
            raise

    def _spawn_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=self._initargs,
        )

    def _respawn(self) -> None:
        """Replace a broken/hung executor with a fresh one.

        The shm segments are parent-owned and untouched, so the new
        workers re-attach in O(1) — recovery cost is process spawn, not
        shard-sized state transfer.  Leftover processes (a hung worker
        after a task timeout) are terminated explicitly; ``shutdown``
        on a broken executor does not reap them.
        """
        old = self._executor
        procs = list((getattr(old, "_processes", None) or {}).values())
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - already torn down
            pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - terminate ignored
                proc.kill()
                proc.join(timeout=5)
        self._executor = self._spawn_executor()
        self.respawns += 1

    def _breaker(self, index: int) -> CircuitBreaker:
        breaker = self._breakers.get(index)
        if breaker is None:
            policy = self.supervisor or SupervisorPolicy()
            breaker = CircuitBreaker(threshold=policy.breaker_threshold,
                                     cooldown_s=policy.breaker_cooldown_s)
            self._breakers[index] = breaker
        return breaker

    @property
    def shared_bytes(self) -> int:
        """Total shm bytes this pool mapped (0 on the pickle transport)."""
        return self._arenas.total_bytes if self._arenas is not None else 0

    def query_batches(self, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        return self._gather("query", batches)

    def explain_batches(self, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        return self._gather("explain", batches)

    def _gather(self, kind: str, batches: Dict[int, List]) -> Dict[int, WorkerTaskResult]:
        tracer = wallspans.active()
        out: Dict[int, WorkerTaskResult] = {}
        todo: Dict[int, List] = {}
        for index, queries in batches.items():
            if not queries:
                # An empty sub-batch answers itself: an empty result and
                # a zero telemetry delta, no worker round-trip.  Explain
                # omits the shard entirely (its report enumerates only
                # shards that did work).
                if kind == "query":
                    out[index] = WorkerTaskResult(payload=[],
                                                  stats=ShardBatchStats())
                continue
            if self.supervisor is not None:
                breaker = self._breakers.get(index)
                if breaker is not None and not breaker.allow():
                    # Open circuit: fail fast instead of feeding a retry
                    # storm to a shard that just exhausted its retries.
                    self.shed_tasks += 1
                    out[index] = WorkerTaskResult(
                        payload=None, stats=ShardBatchStats(),
                        failure="circuit-open",
                        error=breaker.last_error or "circuit open",
                        attempts=0)
                    continue
            todo[index] = list(queries)

        attempt = 1
        while todo:
            pending: Dict[int, Tuple] = {}
            failures: Dict[int, Tuple[str, str]] = {}
            for index, queries in todo.items():
                try:
                    pending[index] = self._submit_one(kind, index, queries,
                                                      tracer)
                except BrokenProcessPool as exc:
                    if self.supervisor is None:
                        raise
                    failures[index] = ("worker-died",
                                       str(exc) or "executor broken at submit")
            broken = bool(failures)
            timeout_s = (self.supervisor.task_timeout_s
                         if self.supervisor is not None else None)
            for index, (future, submitted, pickle_s) in pending.items():
                try:
                    raw = future.result(timeout=timeout_s)
                except FutureTimeoutError:
                    future.cancel()
                    failures[index] = (
                        "timeout", f"task exceeded {timeout_s:g}s deadline")
                    broken = True  # the worker is hung; replace the pool
                except BrokenProcessPool as exc:
                    if self.supervisor is None:
                        raise
                    failures[index] = ("worker-died",
                                       str(exc) or "worker died abruptly")
                    broken = True
                else:
                    out[index] = self._collect_one(index, raw, submitted,
                                                   pickle_s, tracer)
                    if index in self._breakers:
                        self._breakers[index].record_success()
            if not failures:
                break
            # Only reachable supervised: unsupervised failures raise above.
            if broken:
                self._respawn()
            if attempt > self.supervisor.max_retries:
                for index, (failkind, reason) in sorted(failures.items()):
                    self.failed_tasks += 1
                    self._breaker(index).record_failure(reason)
                    out[index] = WorkerTaskResult(
                        payload=None, stats=ShardBatchStats(),
                        failure=failkind, error=reason, attempts=attempt)
                break
            self.retried_tasks += len(failures)
            time.sleep(self.supervisor.delay_s(attempt, self._retry_rng))
            todo = {index: todo[index] for index in failures}
            attempt += 1
        return out

    def _submit_one(self, kind: str, index: int, queries: List,
                    tracer) -> Tuple:
        ctx = tracer.context().to_dict() if tracer is not None else None
        chaos_kill = (self.chaos.next_worker_kill(index)
                      if self.chaos is not None else None)
        t0 = perf_counter()
        payload = pickle.dumps(list(queries), pickle.HIGHEST_PROTOCOL)
        pickle_s = perf_counter() - t0
        submitted = time.time()
        future = self._executor.submit(_run_task, kind, index, payload, ctx,
                                       chaos_kill)
        return future, submitted, pickle_s

    def _collect_one(self, index: int, raw: dict, submitted: float,
                     pickle_s: float, tracer) -> WorkerTaskResult:
        t0 = perf_counter()
        payload = restricted_loads(raw["payload"],
                                   buffers=raw["buffers"] or None)
        unpickle_s = perf_counter() - t0
        done = time.time()
        # Boundary-crossing phases from the shared epoch clock
        # (same-host processes; negative residues are clock noise).
        dispatch_s = max(0.0, raw["started"] - submitted) + pickle_s
        collect_s = max(0.0, done - raw["ended"]) + unpickle_s
        phases = {"dispatch": dispatch_s, "collect": collect_s}
        phases.update(raw["phases"])
        wall_s = pickle_s + max(0.0, done - submitted) + unpickle_s
        if tracer is not None:
            tracer.add("dispatch", submitted - pickle_s, dispatch_s,
                       category="ipc", shard=index)
            tracer.extend(raw["spans"])
            tracer.add("collect", raw["ended"], collect_s,
                       category="ipc", shard=index)
        return WorkerTaskResult(
            payload=payload,
            stats=raw["stats"],
            phases=phases,
            wall_s=wall_s,
            worker_pid=raw["pid"],
            slow_log=raw["slow_log"],
        )

    def health(self) -> dict:
        """Liveness and supervision counters for the health frame."""
        procs = (getattr(self._executor, "_processes", None) or {})
        return {
            "workers": self.workers,
            "alive_workers": sum(1 for p in procs.values()
                                 if p is not None and p.is_alive()),
            "transport": self.transport,
            "supervised": self.supervisor is not None,
            "respawns": self.respawns,
            "retried_tasks": self.retried_tasks,
            "failed_tasks": self.failed_tasks,
            "shed_tasks": self.shed_tasks,
            "breakers": {index: breaker.to_dict()
                         for index, breaker in sorted(self._breakers.items())},
        }

    def shutdown(self) -> None:
        """Drain the workers, then destroy the shared segments.

        Order matters: segments unlink only after every worker had its
        chance to detach.  A worker that already crashed holds no
        mapping (the OS dropped it), so the unlink is safe — and
        unconditional, so a broken pool never leaks ``/dev/shm``.
        """
        try:
            self._executor.shutdown(wait=True)
        finally:
            if self._arenas is not None:
                self._arenas.unlink()
                self._arenas = None

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
