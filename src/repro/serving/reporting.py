"""Per-batch shard telemetry deltas that survive the process boundary.

PR 5's workers shipped back only the raw :class:`~repro.iosim.IOStats`
diff, so the parent's ``io_report()`` lost everything the per-shard
``SegmentDatabase.io_report()`` knows — buffer hits, filtered-arithmetic
counters, fault/retry counters, degradation state.  This module fixes
the merge by construction: :func:`capture_batch` wraps one shard batch
(in a worker *or* in the synchronous path — the same code runs in both)
and produces a :class:`ShardBatchStats` delta; deltas are picklable,
add associatively, and render back into the familiar report shape.
Because both execution back ends capture through the same helper, the
pooled merged report equals the ``workers=0`` synchronous report field
for field (pinned by ``tests/serving/test_report_merge.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..geometry import filtered
from ..iosim import IOStats


def _add_fault_deltas(a: Optional[dict], b: Optional[dict]) -> Optional[dict]:
    """Merge two fault-counter deltas (numeric add; state strings latest)."""
    if a is None:
        return dict(b) if b is not None else None
    if b is None:
        return dict(a)
    out = dict(a)
    for key, value in b.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = out.get(key, 0) + value
        else:
            out[key] = value
    return out


def _diff_fault_report(before: Optional[dict],
                       after: Optional[dict]) -> Optional[dict]:
    if after is None:
        return None
    before = before or {}
    out = {}
    for key, value in after.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = value - before.get(key, 0)
        else:
            out[key] = value
    return out


@dataclass
class ShardBatchStats:
    """The telemetry delta of one shard batch, mergeable across batches.

    Everything here is a *difference* over the batch window (except the
    point-in-time fields ``buffer_capacity``/``quarantined``, where the
    latest observation wins), so per-batch capsules from any number of
    worker processes sum to what one process would have counted.
    """

    io: IOStats = field(default_factory=IOStats)
    buffer_hits: int = 0
    buffer_misses: int = 0
    buffer_capacity: Optional[int] = None  # None: shard runs without a pool
    buffer_pinned: int = 0
    filter_fast: int = 0
    filter_exact: int = 0
    faults: Optional[dict] = None
    degraded_queries: int = 0
    quarantined: bool = False

    def __add__(self, other: "ShardBatchStats") -> "ShardBatchStats":
        return ShardBatchStats(
            io=self.io + other.io,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            buffer_misses=self.buffer_misses + other.buffer_misses,
            buffer_capacity=(other.buffer_capacity
                             if other.buffer_capacity is not None
                             else self.buffer_capacity),
            buffer_pinned=other.buffer_pinned,
            filter_fast=self.filter_fast + other.filter_fast,
            filter_exact=self.filter_exact + other.filter_exact,
            faults=_add_fault_deltas(self.faults, other.faults),
            degraded_queries=self.degraded_queries + other.degraded_queries,
            quarantined=self.quarantined or other.quarantined,
        )

    def to_report(self) -> dict:
        """The per-shard ``io_report()`` entry this delta renders as."""
        out = self.io.to_dict()
        out["total"] = self.io.total
        if self.buffer_capacity is not None:
            touched = self.buffer_hits + self.buffer_misses
            out["buffer"] = {
                "capacity": self.buffer_capacity,
                "hits": self.buffer_hits,
                "misses": self.buffer_misses,
                "hit_rate": self.buffer_hits / touched if touched else 0.0,
                "pinned": self.buffer_pinned,
            }
        else:
            out["buffer"] = None
        filter_total = self.filter_fast + self.filter_exact
        out["filter"] = {
            "fast_hits": self.filter_fast,
            "exact_fallbacks": self.filter_exact,
            "hit_rate": (self.filter_fast / filter_total
                         if filter_total else None),
        }
        out["faults"] = dict(self.faults) if self.faults is not None else None
        out["degraded_queries"] = self.degraded_queries
        out["quarantined"] = self.quarantined
        return out


def capture_batch(db, fn: Callable[[], object]) -> Tuple[object, ShardBatchStats]:
    """Run one batch against ``db`` and capture its telemetry delta.

    ``db`` is a :class:`~repro.core.api.SegmentDatabase`; ``fn`` performs
    the batch (query or explain).  The same helper runs inside worker
    processes and in the synchronous execution path, which is what makes
    the two back ends' merged reports comparable field for field.
    """
    device = db.device
    before_io = device.snapshot()
    pool = db.buffer_pool
    before_hits, before_misses = (pool.hits, pool.misses) if pool else (0, 0)
    before_fast, before_exact = filtered.STATS.snapshot()
    fault_report = getattr(device, "fault_report", None)
    before_faults = fault_report() if fault_report is not None else None
    before_degraded = db._degraded_queries

    out = fn()

    after_fast, after_exact = filtered.STATS.snapshot()
    stats = ShardBatchStats(
        io=device.snapshot() - before_io,
        buffer_hits=(pool.hits - before_hits) if pool else 0,
        buffer_misses=(pool.misses - before_misses) if pool else 0,
        buffer_capacity=pool.capacity if pool else None,
        buffer_pinned=pool.pinned_count if pool else 0,
        filter_fast=after_fast - before_fast,
        filter_exact=after_exact - before_exact,
        faults=_diff_fault_report(
            before_faults,
            fault_report() if fault_report is not None else None,
        ),
        degraded_queries=db._degraded_queries - before_degraded,
        quarantined=db.quarantined,
    )
    return out, stats
