"""X-range sharding of a segment database.

A vertical query touches one x; partitioning the plane into K vertical
slabs therefore routes each query to exactly one shard (two when its x
lands on a slab boundary).  Boundary-crossing segments are **replicated**
into every slab they intersect — the alternative, clipping, would
manufacture segment fragments with new identities and break the NCT
invariant at the cut — and the merge step deduplicates by segment label,
so replication is invisible in results.  The cost is storage: the
``replicated`` counter reports how many extra copies sharding created
(long segments are the worst case, exactly as for the grid baseline's
cell replication).

Each shard is an ordinary :class:`~repro.core.api.SegmentDatabase`, so
every engine, the buffer pool, and the snapshot format all work per shard
unchanged.  Interior boundaries are population quantiles of the segment
x-midpoints, which balances shard sizes under skew better than an even
split of the x-extent.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.api import ENGINES, SegmentDatabase
from ..core.recovery import DegradedBatch, DegradedResult
from ..geometry import Segment, VerticalQuery
from ..iosim import SnapshotFormatError
from ..telemetry import (
    ExplainReport,
    LatencyHistogram,
    SlowQueryLog,
    timed_span,
)
from .reporting import ShardBatchStats, capture_batch
from .resilience import RpcChaosSchedule, ShardDownError, SupervisorPolicy
from .workers import _DEFAULT_SUPERVISOR, ShardWorkerPool

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def _boundary_to_str(value) -> str:
    return str(Fraction(value))


def _boundary_from_str(text: str):
    value = Fraction(text)
    return int(value) if value.denominator == 1 else value


class ShardedSegmentDatabase:
    """K x-range shards behind one query surface.

    Build with :meth:`bulk_load`, persist with :meth:`save`, and serve
    with :meth:`open` — synchronously (``workers=0``, every shard opened
    in-process) or across a :class:`~repro.serving.workers.ShardWorkerPool`
    (``workers>0``).  Both paths share the routing and merge code, so
    their results are identical query for query.
    """

    def __init__(
        self,
        engine: str,
        boundaries: Sequence,
        shards: Optional[List[SegmentDatabase]] = None,
        pool: Optional[ShardWorkerPool] = None,
        segment_count: int = 0,
        replicated: int = 0,
    ):
        if (shards is None) == (pool is None):
            raise ValueError("exactly one of shards / pool must be given")
        self.engine_name = engine
        self.boundaries = list(boundaries)  # interior cuts, ascending
        self.shard_count = (len(shards) if shards is not None
                            else len(pool._paths))
        if len(self.boundaries) != self.shard_count - 1:
            raise ValueError(
                f"{self.shard_count} shards need {self.shard_count - 1} "
                f"interior boundaries, got {len(self.boundaries)}"
            )
        self._shards = shards
        self._pool = pool
        self.segment_count = segment_count
        self.replicated = replicated
        # Telemetry deltas accumulate per shard in *both* execution
        # modes through the same capture helper, so the pooled merged
        # report equals the synchronous one field for field.
        self._shard_stats = [ShardBatchStats() for _ in range(self.shard_count)]
        # Wall-clock observability: per-batch latency histogram, phase
        # decomposition totals (dispatch/deserialize/attach/query/
        # serialize/collect in pool mode, query in sync mode), and the
        # parent-observed task wall those phases must sum to.
        self.batch_latency = LatencyHistogram("serve.batch_s")
        self._phase_seconds: Dict[str, float] = {}
        self._task_wall_s = 0.0
        self._tasks = 0
        self.slow_log: Optional[SlowQueryLog] = None
        # Degradation bookkeeping: batches that lost at least one shard
        # and the individual queries served with partial coverage.
        self.degraded_batches = 0
        self.degraded_queries = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        segments,
        shards: int = 4,
        engine: str = "solution2",
        block_capacity: int = 64,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
    ) -> "ShardedSegmentDatabase":
        """Partition ``segments`` into x-range slabs and build each shard."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")
        segments = list(segments)
        boundaries = cls._choose_boundaries(segments, shards)
        slabs: List[List[Segment]] = [[] for _ in range(len(boundaries) + 1)]
        replicated = 0
        for s in segments:
            hit = cls._slabs_of_range(boundaries, s.xmin, s.xmax)
            replicated += len(hit) - 1
            for i in hit:
                slabs[i].append(s)
        built = [
            SegmentDatabase.bulk_load(
                slab, engine=engine, block_capacity=block_capacity,
                buffer_pages=buffer_pages, validate=validate,
            )
            for slab in slabs
        ]
        return cls(engine, boundaries, shards=built,
                   segment_count=len(segments), replicated=replicated)

    @staticmethod
    def _choose_boundaries(segments: List[Segment], shards: int) -> List:
        """Interior cuts at x-midpoint quantiles (deduplicated, so heavy
        skew may yield fewer effective shards than requested)."""
        if shards == 1 or not segments:
            return []
        mids = sorted(Fraction(s.xmin + s.xmax) / 2 for s in segments)
        cuts = []
        for k in range(1, shards):
            cut = mids[(k * len(mids)) // shards]
            cut = int(cut) if cut.denominator == 1 else cut
            if not cuts or cut > cuts[-1]:
                cuts.append(cut)
        return cuts

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def _slabs_of_range(boundaries: List, xlo, xhi) -> List[int]:
        """Indices of every slab the closed x-range intersects.

        Slab ``i`` covers the closed interval [b_{i-1}, b_i] (unbounded at
        the ends); adjacent slabs share their boundary point, which is what
        makes boundary routing find the replica on either side.
        """
        out = []
        for i in range(len(boundaries) + 1):
            lo = boundaries[i - 1] if i > 0 else None
            hi = boundaries[i] if i < len(boundaries) else None
            if (lo is None or xhi >= lo) and (hi is None or xlo <= hi):
                out.append(i)
        return out

    def shards_for(self, x) -> List[int]:
        """Which shards answer a query at ``x`` (two iff x is a boundary)."""
        return self._slabs_of_range(self.boundaries, x, x)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery) -> List[Segment]:
        return self.query_batch([q])[0]

    def query_batch(
        self, queries: Sequence[VerticalQuery], degrade: bool = True
    ) -> List[List[Segment]]:
        """Route, execute per shard, and merge back into input order.

        Replicated boundary-crossers are deduplicated by label during the
        merge (ascending shard order, first occurrence wins), so results
        match an unsharded database up to ordering within a query.

        When a supervised pool reports shards down (retries exhausted or
        circuit open) and ``degrade`` is true, the batch is still
        answered: queries routed to a dead shard come back as
        :class:`~repro.core.recovery.DegradedResult` entries holding
        what the live shards contributed, and the batch itself is a
        :class:`~repro.core.recovery.DegradedBatch` whose
        ``shard_coverage`` names exactly which routed shards served.
        A fault-free batch returns a plain list — bit-identical to the
        unsupervised result.  ``degrade=False`` raises
        :class:`~repro.serving.resilience.ShardDownError` instead.
        """
        queries = list(queries)
        if not queries:
            return []
        t0 = perf_counter()
        batches, routes = self._route(queries)
        executed, failures = self._execute_query_batches(batches)
        if failures and not degrade:
            raise ShardDownError(failures)
        out: List[List[Segment]] = []
        degraded = 0
        for pos, q in enumerate(queries):
            hit = routes[pos]
            down = [index for index, _ in hit if index in failures]
            if not down and len(hit) == 1:
                index, offset = hit[0]
                out.append(executed[index][offset])
                continue
            seen = set()
            merged: List[Segment] = []
            for index, offset in hit:
                if index in failures:
                    continue
                for s in executed[index][offset]:
                    if s.label not in seen:
                        seen.add(s.label)
                        merged.append(s)
            if down:
                reason = "; ".join(f"shard {index}: {failures[index][0]}"
                                   for index in down)
                out.append(DegradedResult(merged, reason=reason,
                                          source="shard-down"))
                degraded += 1
            else:
                out.append(merged)
        self.batch_latency.observe(perf_counter() - t0)
        if not failures:
            return out
        routed = sorted({index for hit in routes for index, _ in hit})
        coverage = {
            index: ("ok" if index not in failures
                    else f"down: {failures[index][0]}: {failures[index][1]}")
            for index in routed
        }
        self.degraded_batches += 1
        self.degraded_queries += degraded
        summary = (f"{len(failures)} of {len(routed)} routed shards down "
                   f"({degraded} of {len(queries)} queries degraded)")
        return DegradedBatch(out, coverage, summary)

    def explain_batch(
        self, queries: Sequence[VerticalQuery]
    ) -> List[ExplainReport]:
        """Per-shard cost anatomies of the routed batch (ascending shard
        index, shards that received no queries omitted).  Each report is
        exactly what the shard's own ``explain_batch`` produced; summing
        their ``io`` fields gives the whole batch's cost."""
        queries = list(queries)
        if not queries:
            return []
        batches, _routes = self._route(queries)
        reports, failures = self._execute(batches, explain=True)
        if failures:
            # Explain is a diagnostic: a partial anatomy would silently
            # under-report the batch's cost, so shard loss raises.
            raise ShardDownError(failures)
        out = []
        for index in sorted(reports):
            report = reports[index]
            report.description = f"shard {index}: {report.description}"
            out.append(report)
        return out

    def _route(
        self, queries: List[VerticalQuery]
    ) -> Tuple[Dict[int, List[VerticalQuery]], List[List[Tuple[int, int]]]]:
        """Split a batch into per-shard sub-batches.

        Returns the sub-batches plus, per input query, its ``(shard,
        offset-within-sub-batch)`` coordinates for the scatter-back.
        """
        batches: Dict[int, List[VerticalQuery]] = {}
        routes: List[List[Tuple[int, int]]] = []
        for q in queries:
            hit = []
            for index in self.shards_for(q.x):
                sub = batches.setdefault(index, [])
                hit.append((index, len(sub)))
                sub.append(q)
            routes.append(hit)
        return batches, routes

    # ------------------------------------------------------------------
    # execution back ends (synchronous vs worker pool)
    # ------------------------------------------------------------------
    def _execute_query_batches(
        self, batches: Dict[int, List[VerticalQuery]]
    ) -> Tuple[Dict[int, List[List[Segment]]], Dict[int, Tuple[str, str]]]:
        return self._execute(batches, explain=False)

    def _execute(self, batches: Dict[int, List[VerticalQuery]],
                 explain: bool) -> Tuple[Dict, Dict[int, Tuple[str, str]]]:
        """Run per-shard sub-batches on the active back end.

        Both back ends capture the same :class:`ShardBatchStats` delta
        per sub-batch and feed the same phase/latency accumulators, so
        every report this class renders is back-end-agnostic.  Returns
        the per-shard results plus ``{shard: (kind, reason)}`` for the
        shards a supervised pool could not serve (always empty in
        synchronous mode, where there is no process to lose).
        """
        out = {}
        failures: Dict[int, Tuple[str, str]] = {}
        if self._pool is None:
            for index, queries in batches.items():
                db = self._shards[index]
                runner = db.explain_batch if explain else db.query_batch
                t0 = perf_counter()
                with timed_span("query", category="engine", shard=index,
                                queries=len(queries)):
                    result, stats = capture_batch(db, lambda: runner(queries))
                elapsed = perf_counter() - t0
                self._shard_stats[index] = self._shard_stats[index] + stats
                self._note_task({"query": elapsed}, elapsed)
                if db.slow_log is not None and self.slow_log is not None:
                    self.slow_log.absorb(db.slow_log.drain())
                out[index] = result
            return out, failures
        gather = (self._pool.explain_batches if explain
                  else self._pool.query_batches)
        for index, task in gather(batches).items():
            if not task.ok:
                failures[index] = (task.failure,
                                   task.error or task.failure)
                continue
            self._shard_stats[index] = self._shard_stats[index] + task.stats
            self._note_task(task.phases, task.wall_s)
            if self.slow_log is not None and task.slow_log:
                self.slow_log.absorb(task.slow_log)
            out[index] = task.payload
        return out, failures

    def _note_task(self, phases: Dict[str, float], wall_s: float) -> None:
        for name, seconds in phases.items():
            self._phase_seconds[name] = (
                self._phase_seconds.get(name, 0.0) + seconds
            )
        self._task_wall_s += wall_s
        self._tasks += 1

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def io_report(self) -> dict:
        """Per-shard and combined telemetry, JSON-ready.

        Each shard entry carries the full counter family the flat
        :meth:`~repro.core.api.SegmentDatabase.io_report` knows — raw
        I/O, buffer hits/misses, filtered-arithmetic counters, fault
        deltas, degradation state — accumulated through the *same*
        capture helper in both execution modes, so a pooled report
        equals the ``workers=0`` synchronous report field for field and
        the combined block equals the sum of the shard blocks.
        """
        per_shard = list(self._shard_stats)
        combined = ShardBatchStats()
        for stats in per_shard:
            combined = combined + stats
        return {
            "shards": [stats.to_report() for stats in per_shard],
            "combined": combined.to_report(),
        }

    def latency_report(self) -> dict:
        """Wall-clock anatomy of the serving work done so far.

        ``phases_s`` decomposes task time into the cross-process phases
        (pool mode: dispatch/deserialize/attach/query/serialize/collect;
        synchronous mode: query only); ``task_wall_s`` is the parent-
        observed wall-clock those phases must explain, and
        ``phase_coverage`` is their ratio — the E17 acceptance pins it
        within 10% of 1.  ``batches`` summarizes the per-call latency
        histogram (p50/p95/p99).
        """
        phase_sum = sum(self._phase_seconds.values())
        return {
            "tasks": self._tasks,
            "phases_s": {name: round(seconds, 6)
                         for name, seconds in sorted(self._phase_seconds.items())},
            "phase_sum_s": round(phase_sum, 6),
            "task_wall_s": round(self._task_wall_s, 6),
            "phase_coverage": (round(phase_sum / self._task_wall_s, 4)
                               if self._task_wall_s else None),
            "batches": self.batch_latency.summary(),
        }

    def health_report(self) -> dict:
        """Serving health: execution mode, degradation counters, and (in
        pool mode) worker liveness, respawn counts, and breaker states —
        the payload behind the daemon's ``health`` frame."""
        report = {
            "mode": "pool" if self._pool is not None else "sync",
            "shards": self.shard_count,
            "degraded_batches": self.degraded_batches,
            "degraded_queries": self.degraded_queries,
        }
        if self._pool is not None:
            report["pool"] = self._pool.health()
        return report

    def enable_slow_query_log(self, threshold_s: float,
                              capacity: int = 128) -> SlowQueryLog:
        """Start logging slow shard batches; returns the merged log.

        Synchronous mode enables a log on every shard database and
        drains them into the merged log after each batch.  In pool mode
        the worker-side logs are configured at :meth:`open` time (pass
        ``slow_query_s``); this call then only (re)creates the parent
        log that absorbs what workers ship back.
        """
        self.slow_log = SlowQueryLog(threshold_s, capacity)
        if self._shards is not None:
            for db in self._shards:
                db.enable_slow_query_log(threshold_s, capacity)
        return self.slow_log

    def __len__(self) -> int:
        return self.segment_count

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> dict:
        """Write one snapshot per shard plus a manifest into ``directory``.

        Returns the manifest dict (paths relative to the directory).
        Only a synchronously held database can save — in pool mode the
        page stores live in the workers.
        """
        if self._shards is None:
            raise ValueError("cannot save a pool-backed sharded database; "
                             "save before open(workers=...)")
        os.makedirs(directory, exist_ok=True)
        shard_files = []
        for index, db in enumerate(self._shards):
            name = f"shard-{index:03d}.snap"
            db.save(os.path.join(directory, name))
            shard_files.append(name)
        manifest = {
            "format_version": MANIFEST_VERSION,
            "engine": self.engine_name,
            "shards": self.shard_count,
            "boundaries": [_boundary_to_str(b) for b in self.boundaries],
            "segment_count": self.segment_count,
            "replicated": self.replicated,
            "shard_files": shard_files,
        }
        with open(os.path.join(directory, MANIFEST_NAME), "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return manifest

    @classmethod
    def open(
        cls,
        directory: str,
        workers: int = 0,
        buffer_pages: Optional[int] = None,
        slow_query_s: Optional[float] = None,
        transport: str = "shm",
        cache_pages: Optional[int] = None,
        supervisor: Optional[SupervisorPolicy] = _DEFAULT_SUPERVISOR,
        chaos: Optional[RpcChaosSchedule] = None,
    ) -> "ShardedSegmentDatabase":
        """Restore a sharded database saved by :meth:`save`.

        ``workers=0`` opens every shard in this process; ``workers>0``
        hands the snapshot paths to a
        :class:`~repro.serving.workers.ShardWorkerPool` and shards are
        attached (once each) inside the worker processes instead —
        zero-copy out of shared memory on ``transport="shm"`` (the
        default; ``cache_pages`` bounds each worker's decoded-page LRU),
        or by per-process snapshot open on ``transport="pickle"``.
        ``slow_query_s`` arms a slow-query log at that threshold on
        every shard (worker-side in pool mode, entries shipped back with
        each batch) merged into ``self.slow_log``.  ``supervisor`` and
        ``chaos`` forward to the pool: supervision is on by default
        (worker death degrades instead of raising); pass
        ``supervisor=None`` for the legacy raise-through surface.
        """
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise SnapshotFormatError(manifest_path, "manifest not found")
        except json.JSONDecodeError as exc:
            raise SnapshotFormatError(manifest_path,
                                      f"manifest is not JSON: {exc}") from exc
        version = manifest.get("format_version")
        if version != MANIFEST_VERSION:
            raise SnapshotFormatError(
                manifest_path,
                f"unsupported manifest version {version!r} "
                f"(expected {MANIFEST_VERSION})",
            )
        boundaries = [_boundary_from_str(b) for b in manifest["boundaries"]]
        paths = [os.path.join(directory, name)
                 for name in manifest["shard_files"]]
        if workers > 0:
            pool = ShardWorkerPool(paths, workers, buffer_pages=buffer_pages,
                                   slow_query_s=slow_query_s,
                                   transport=transport,
                                   cache_pages=cache_pages,
                                   supervisor=supervisor,
                                   chaos=chaos)
            db = cls(manifest["engine"], boundaries, pool=pool,
                     segment_count=manifest["segment_count"],
                     replicated=manifest["replicated"])
        else:
            shards = [SegmentDatabase.open(path, buffer_pages=buffer_pages)
                      for path in paths]
            db = cls(manifest["engine"], boundaries, shards=shards,
                     segment_count=manifest["segment_count"],
                     replicated=manifest["replicated"])
        if slow_query_s is not None:
            db.enable_slow_query_log(slow_query_s)
        return db

    def close(self) -> None:
        """Shut the worker pool down (no-op in synchronous mode)."""
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "ShardedSegmentDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
