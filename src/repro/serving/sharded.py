"""X-range sharding of a segment database.

A vertical query touches one x; partitioning the plane into K vertical
slabs therefore routes each query to exactly one shard (two when its x
lands on a slab boundary).  Boundary-crossing segments are **replicated**
into every slab they intersect — the alternative, clipping, would
manufacture segment fragments with new identities and break the NCT
invariant at the cut — and the merge step deduplicates by segment label,
so replication is invisible in results.  The cost is storage: the
``replicated`` counter reports how many extra copies sharding created
(long segments are the worst case, exactly as for the grid baseline's
cell replication).

Each shard is an ordinary :class:`~repro.core.api.SegmentDatabase`, so
every engine, the buffer pool, and the snapshot format all work per shard
unchanged.  Interior boundaries are population quantiles of the segment
x-midpoints, which balances shard sizes under skew better than an even
split of the x-extent.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.api import ENGINES, SegmentDatabase
from ..geometry import Segment, VerticalQuery
from ..iosim import IOStats, SnapshotFormatError
from ..telemetry import ExplainReport
from .workers import ShardWorkerPool

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def _boundary_to_str(value) -> str:
    return str(Fraction(value))


def _boundary_from_str(text: str):
    value = Fraction(text)
    return int(value) if value.denominator == 1 else value


class ShardedSegmentDatabase:
    """K x-range shards behind one query surface.

    Build with :meth:`bulk_load`, persist with :meth:`save`, and serve
    with :meth:`open` — synchronously (``workers=0``, every shard opened
    in-process) or across a :class:`~repro.serving.workers.ShardWorkerPool`
    (``workers>0``).  Both paths share the routing and merge code, so
    their results are identical query for query.
    """

    def __init__(
        self,
        engine: str,
        boundaries: Sequence,
        shards: Optional[List[SegmentDatabase]] = None,
        pool: Optional[ShardWorkerPool] = None,
        segment_count: int = 0,
        replicated: int = 0,
    ):
        if (shards is None) == (pool is None):
            raise ValueError("exactly one of shards / pool must be given")
        self.engine_name = engine
        self.boundaries = list(boundaries)  # interior cuts, ascending
        self.shard_count = (len(shards) if shards is not None
                            else len(pool._paths))
        if len(self.boundaries) != self.shard_count - 1:
            raise ValueError(
                f"{self.shard_count} shards need {self.shard_count - 1} "
                f"interior boundaries, got {len(self.boundaries)}"
            )
        self._shards = shards
        self._pool = pool
        self.segment_count = segment_count
        self.replicated = replicated
        # Pool mode: I/O happens in worker processes; accumulate the
        # per-batch diffs they report so io_report() still adds up.
        self._pool_io = [IOStats() for _ in range(self.shard_count)]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        segments,
        shards: int = 4,
        engine: str = "solution2",
        block_capacity: int = 64,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
    ) -> "ShardedSegmentDatabase":
        """Partition ``segments`` into x-range slabs and build each shard."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")
        segments = list(segments)
        boundaries = cls._choose_boundaries(segments, shards)
        slabs: List[List[Segment]] = [[] for _ in range(len(boundaries) + 1)]
        replicated = 0
        for s in segments:
            hit = cls._slabs_of_range(boundaries, s.xmin, s.xmax)
            replicated += len(hit) - 1
            for i in hit:
                slabs[i].append(s)
        built = [
            SegmentDatabase.bulk_load(
                slab, engine=engine, block_capacity=block_capacity,
                buffer_pages=buffer_pages, validate=validate,
            )
            for slab in slabs
        ]
        return cls(engine, boundaries, shards=built,
                   segment_count=len(segments), replicated=replicated)

    @staticmethod
    def _choose_boundaries(segments: List[Segment], shards: int) -> List:
        """Interior cuts at x-midpoint quantiles (deduplicated, so heavy
        skew may yield fewer effective shards than requested)."""
        if shards == 1 or not segments:
            return []
        mids = sorted(Fraction(s.xmin + s.xmax) / 2 for s in segments)
        cuts = []
        for k in range(1, shards):
            cut = mids[(k * len(mids)) // shards]
            cut = int(cut) if cut.denominator == 1 else cut
            if not cuts or cut > cuts[-1]:
                cuts.append(cut)
        return cuts

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def _slabs_of_range(boundaries: List, xlo, xhi) -> List[int]:
        """Indices of every slab the closed x-range intersects.

        Slab ``i`` covers the closed interval [b_{i-1}, b_i] (unbounded at
        the ends); adjacent slabs share their boundary point, which is what
        makes boundary routing find the replica on either side.
        """
        out = []
        for i in range(len(boundaries) + 1):
            lo = boundaries[i - 1] if i > 0 else None
            hi = boundaries[i] if i < len(boundaries) else None
            if (lo is None or xhi >= lo) and (hi is None or xlo <= hi):
                out.append(i)
        return out

    def shards_for(self, x) -> List[int]:
        """Which shards answer a query at ``x`` (two iff x is a boundary)."""
        return self._slabs_of_range(self.boundaries, x, x)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery) -> List[Segment]:
        return self.query_batch([q])[0]

    def query_batch(
        self, queries: Sequence[VerticalQuery]
    ) -> List[List[Segment]]:
        """Route, execute per shard, and merge back into input order.

        Replicated boundary-crossers are deduplicated by label during the
        merge (ascending shard order, first occurrence wins), so results
        match an unsharded database up to ordering within a query.
        """
        queries = list(queries)
        if not queries:
            return []
        batches, routes = self._route(queries)
        executed = self._execute_query_batches(batches)
        out: List[List[Segment]] = []
        for pos, q in enumerate(queries):
            hit = routes[pos]
            if len(hit) == 1:
                index, offset = hit[0]
                out.append(executed[index][offset])
                continue
            seen = set()
            merged: List[Segment] = []
            for index, offset in hit:
                for s in executed[index][offset]:
                    if s.label not in seen:
                        seen.add(s.label)
                        merged.append(s)
            out.append(merged)
        return out

    def explain_batch(
        self, queries: Sequence[VerticalQuery]
    ) -> List[ExplainReport]:
        """Per-shard cost anatomies of the routed batch (ascending shard
        index, shards that received no queries omitted).  Each report is
        exactly what the shard's own ``explain_batch`` produced; summing
        their ``io`` fields gives the whole batch's cost."""
        queries = list(queries)
        if not queries:
            return []
        batches, _routes = self._route(queries)
        reports = self._execute_explain_batches(batches)
        out = []
        for index in sorted(reports):
            report = reports[index]
            report.description = f"shard {index}: {report.description}"
            out.append(report)
        return out

    def _route(
        self, queries: List[VerticalQuery]
    ) -> Tuple[Dict[int, List[VerticalQuery]], List[List[Tuple[int, int]]]]:
        """Split a batch into per-shard sub-batches.

        Returns the sub-batches plus, per input query, its ``(shard,
        offset-within-sub-batch)`` coordinates for the scatter-back.
        """
        batches: Dict[int, List[VerticalQuery]] = {}
        routes: List[List[Tuple[int, int]]] = []
        for q in queries:
            hit = []
            for index in self.shards_for(q.x):
                sub = batches.setdefault(index, [])
                hit.append((index, len(sub)))
                sub.append(q)
            routes.append(hit)
        return batches, routes

    # ------------------------------------------------------------------
    # execution back ends (synchronous vs worker pool)
    # ------------------------------------------------------------------
    def _execute_query_batches(
        self, batches: Dict[int, List[VerticalQuery]]
    ) -> Dict[int, List[List[Segment]]]:
        if self._pool is None:
            return {
                index: self._shards[index].query_batch(queries)
                for index, queries in batches.items()
            }
        gathered = self._pool.query_batches(batches)
        out = {}
        for index, (results, io) in gathered.items():
            self._pool_io[index] = self._pool_io[index] + io
            out[index] = results
        return out

    def _execute_explain_batches(
        self, batches: Dict[int, List[VerticalQuery]]
    ) -> Dict[int, ExplainReport]:
        if self._pool is None:
            return {
                index: self._shards[index].explain_batch(queries)
                for index, queries in batches.items()
            }
        gathered = self._pool.explain_batches(batches)
        out = {}
        for index, (report, io) in gathered.items():
            self._pool_io[index] = self._pool_io[index] + io
            out[index] = report
        return out

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def io_report(self) -> dict:
        """Per-shard and combined I/O counters.

        In pool mode the per-shard entries are the accumulated diffs the
        workers shipped back with each batch; in synchronous mode they
        are the shard devices' live counters.  Either way the combined
        block equals the sum of the shard blocks.
        """
        if self._pool is None:
            per_shard = [db.io_stats() for db in self._shards]
        else:
            per_shard = list(self._pool_io)
        combined = IOStats()
        for stats in per_shard:
            combined = combined + stats
        shard_dicts = []
        for stats in per_shard:
            entry = stats.to_dict()
            entry["total"] = stats.total
            shard_dicts.append(entry)
        total = combined.to_dict()
        total["total"] = combined.total
        return {"shards": shard_dicts, "combined": total}

    def __len__(self) -> int:
        return self.segment_count

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> dict:
        """Write one snapshot per shard plus a manifest into ``directory``.

        Returns the manifest dict (paths relative to the directory).
        Only a synchronously held database can save — in pool mode the
        page stores live in the workers.
        """
        if self._shards is None:
            raise ValueError("cannot save a pool-backed sharded database; "
                             "save before open(workers=...)")
        os.makedirs(directory, exist_ok=True)
        shard_files = []
        for index, db in enumerate(self._shards):
            name = f"shard-{index:03d}.snap"
            db.save(os.path.join(directory, name))
            shard_files.append(name)
        manifest = {
            "format_version": MANIFEST_VERSION,
            "engine": self.engine_name,
            "shards": self.shard_count,
            "boundaries": [_boundary_to_str(b) for b in self.boundaries],
            "segment_count": self.segment_count,
            "replicated": self.replicated,
            "shard_files": shard_files,
        }
        with open(os.path.join(directory, MANIFEST_NAME), "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return manifest

    @classmethod
    def open(
        cls,
        directory: str,
        workers: int = 0,
        buffer_pages: Optional[int] = None,
    ) -> "ShardedSegmentDatabase":
        """Restore a sharded database saved by :meth:`save`.

        ``workers=0`` opens every shard in this process; ``workers>0``
        hands the snapshot paths to a
        :class:`~repro.serving.workers.ShardWorkerPool` and shards are
        opened (once each) inside the worker processes instead.
        """
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise SnapshotFormatError(manifest_path, "manifest not found")
        except json.JSONDecodeError as exc:
            raise SnapshotFormatError(manifest_path,
                                      f"manifest is not JSON: {exc}") from exc
        version = manifest.get("format_version")
        if version != MANIFEST_VERSION:
            raise SnapshotFormatError(
                manifest_path,
                f"unsupported manifest version {version!r} "
                f"(expected {MANIFEST_VERSION})",
            )
        boundaries = [_boundary_from_str(b) for b in manifest["boundaries"]]
        paths = [os.path.join(directory, name)
                 for name in manifest["shard_files"]]
        if workers > 0:
            pool = ShardWorkerPool(paths, workers, buffer_pages=buffer_pages)
            return cls(manifest["engine"], boundaries, pool=pool,
                       segment_count=manifest["segment_count"],
                       replicated=manifest["replicated"])
        shards = [SegmentDatabase.open(path, buffer_pages=buffer_pages)
                  for path in paths]
        return cls(manifest["engine"], boundaries, shards=shards,
                   segment_count=manifest["segment_count"],
                   replicated=manifest["replicated"])

    def close(self) -> None:
        """Shut the worker pool down (no-op in synchronous mode)."""
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "ShardedSegmentDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
