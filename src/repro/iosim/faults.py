"""Fault injection for the simulated block device.

The paper analyses an idealized disk; real disks fail transiently, tear
writes, and rot at rest.  This module makes :class:`BlockDevice` lie in
all the ways a production disk does — reproducibly:

:class:`FaultSchedule`
    A seeded, deterministic source of faults.  Two identical schedules
    replayed over the same workload inject the same faults at the same
    I/Os, so every chaos failure ships with a reproduction recipe
    (``to_dict()`` → CI artifact → ``from_dict()``).

:class:`RetryPolicy`
    Bounded retries with deterministic backoff.  Each retry is a real
    read I/O (it is charged to ``reads`` like any other attempt), and the
    backoff is additionally charged to ``retry_penalty_ios`` so the cost
    of surviving a flaky disk is visible in ``io_report()``.

:class:`FaultyBlockDevice`
    A drop-in :class:`BlockDevice` that checksums every written page,
    verifies the checksum on every read, retries transient faults, and
    exposes an undo journal giving update operations all-or-nothing
    semantics (DESIGN.md §10).

Fault-free equivalence is a hard contract: with a schedule attached but
no faults firing, the device charges *bit-identical* I/O counts to the
plain :class:`BlockDevice` and returns identical results.  Everything in
this module that is not an injected fault must therefore be free in the
cost model (checksum verification models a CRC the disk computes inline;
journal bookkeeping models a change-log kept in NVRAM).
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from random import Random
from typing import Dict, List, Optional, Tuple

from ..telemetry import trace as _trace
from .disk import BlockDevice
from .errors import (
    ChecksumError,
    DanglingPageError,
    DoubleFreeError,
    SimulatedCrash,
    StorageError,
    TransientIOError,
)
from .page import Page


def page_fingerprint(page: Page) -> int:
    """A CRC32 over the page's logical content.

    Items and header values are fingerprinted via ``repr``; the header is
    sorted so dict order cannot change the checksum.
    """
    payload = repr((page.items, sorted(page.header.items())))
    return zlib.crc32(payload.encode("utf-8", "backslashreplace"))


class RetryPolicy:
    """How hard the device tries before surfacing a read fault.

    Parameters
    ----------
    max_retries:
        Retries after the first failed attempt (so a read costs at most
        ``1 + max_retries`` read I/Os).
    backoff_ios:
        Deterministic backoff charged per retry, in I/O-equivalents:
        retry *k* adds ``backoff_ios * k`` to ``retry_penalty_ios``.
        The paper's counters (``reads``/``writes``) are unaffected.
    """

    def __init__(self, max_retries: int = 3, backoff_ios: int = 0):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_ios < 0:
            raise ValueError("backoff_ios must be >= 0")
        self.max_retries = max_retries
        self.backoff_ios = backoff_ios

    def penalty(self, attempt: int) -> int:
        """Backoff charged for retry number ``attempt`` (1-based)."""
        return self.backoff_ios * attempt

    def to_dict(self) -> dict:
        return {"max_retries": self.max_retries, "backoff_ios": self.backoff_ios}

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"backoff_ios={self.backoff_ios})"
        )


class ReplayableSchedule:
    """Seed, history, and arming plumbing shared by every chaos schedule.

    A schedule is a deterministic source of fault decisions: identical
    seeds replay identical decisions over identical workloads, and every
    injected fault is appended to :attr:`history` so a failing run ships
    with its own reproduction recipe.  :class:`FaultSchedule` applies
    this to the storage layer; the serving layer's
    :class:`~repro.serving.resilience.RpcChaosSchedule` applies it to
    worker processes and RPC frames.
    """

    def __init__(self, seed: int = 0, enabled: bool = True):
        self.seed = seed
        self.enabled = enabled
        self.history: List[dict] = []
        self._rng = Random(seed)

    def _log(self, kind: str, **details) -> None:
        event = {"seq": len(self.history), "kind": kind}
        event.update(details)
        self.history.append(event)

    @contextmanager
    def disarmed(self):
        """Suspend fault injection for the scope (used during bulk_load)."""
        prev = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = prev


class FaultSchedule(ReplayableSchedule):
    """A seeded, replayable schedule of storage faults.

    Parameters
    ----------
    seed:
        Seeds the internal PRNG; identical seeds replay identical faults.
    read_error_rate:
        Probability that a read attempt fails transiently (a retry may
        succeed).
    corrupt_read_rate:
        Probability that a read attempt returns corrupted data in flight
        (detected by the checksum; a retry re-reads the good copy).
    torn_write_rate:
        Probability that a write is torn: the write I/O is charged but
        the stored page is left corrupt at rest until rewritten.
    crash_after_writes:
        Crash (``SimulatedCrash``) on the N-th journaled write of the
        next update operation, tearing that page.  One-shot; ``None``
        disarms.  Only fires while a journal is open — crashing a
        read-only query would have nothing to recover.
    crash_points:
        ``{name: k}`` — crash on the k-th time the named crash point in
        the engine code is passed (1-based).  One-shot per name.
    enabled:
        Master switch.  ``SegmentDatabase`` disarms the schedule during
        ``bulk_load`` so faults target the workload, not the build.

    Every injected fault is appended to :attr:`history`, so a failing
    chaos run can dump exactly what was injected and when.
    """

    def __init__(
        self,
        seed: int = 0,
        read_error_rate: float = 0.0,
        corrupt_read_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        crash_after_writes: Optional[int] = None,
        crash_points: Optional[Dict[str, int]] = None,
        enabled: bool = True,
    ):
        for name, rate in (
            ("read_error_rate", read_error_rate),
            ("corrupt_read_rate", corrupt_read_rate),
            ("torn_write_rate", torn_write_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        super().__init__(seed=seed, enabled=enabled)
        self.read_error_rate = read_error_rate
        self.corrupt_read_rate = corrupt_read_rate
        self.torn_write_rate = torn_write_rate
        self.crash_after_writes = crash_after_writes
        self.crash_points: Dict[str, int] = dict(crash_points or {})
        self._point_hits: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # fault decisions (called by FaultyBlockDevice)
    # ------------------------------------------------------------------
    def next_read_fault(self, page_id: int, attempt: int) -> Optional[str]:
        """``"transient"``, ``"corrupt"``, or ``None`` for this attempt."""
        if self.read_error_rate and self._rng.random() < self.read_error_rate:
            self._log("transient-read", page_id=page_id, attempt=attempt)
            return "transient"
        if self.corrupt_read_rate and self._rng.random() < self.corrupt_read_rate:
            self._log("corrupt-read", page_id=page_id, attempt=attempt)
            return "corrupt"
        return None

    def next_write_fault(self, page_id: int) -> Optional[str]:
        """``"torn"`` or ``None`` for this write."""
        if self.torn_write_rate and self._rng.random() < self.torn_write_rate:
            self._log("torn-write", page_id=page_id)
            return "torn"
        return None

    def should_crash_on_write(self, page_id: int) -> bool:
        """Count down ``crash_after_writes`` (journaled writes only)."""
        if self.crash_after_writes is None:
            return False
        self.crash_after_writes -= 1
        if self.crash_after_writes > 0:
            return False
        self.crash_after_writes = None
        self._log("crash-on-write", page_id=page_id)
        return True

    def hit_crash_point(self, name: str) -> bool:
        """Count a pass through the named crash point; True when it fires."""
        target = self.crash_points.get(name)
        if target is None:
            return False
        hits = self._point_hits.get(name, 0) + 1
        self._point_hits[name] = hits
        if hits < target:
            return False
        del self.crash_points[name]
        self._log("crash-point", name=name, hit=hits)
        return True

    # ------------------------------------------------------------------
    # reproduction
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The schedule's configuration plus everything it injected.

        ``from_dict`` of the configuration part rebuilds a schedule that
        replays the same faults over the same workload.
        """
        return {
            "seed": self.seed,
            "read_error_rate": self.read_error_rate,
            "corrupt_read_rate": self.corrupt_read_rate,
            "torn_write_rate": self.torn_write_rate,
            "crash_after_writes": self.crash_after_writes,
            "crash_points": dict(self.crash_points),
            "enabled": self.enabled,
            "history": list(self.history),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(
            seed=data.get("seed", 0),
            read_error_rate=data.get("read_error_rate", 0.0),
            corrupt_read_rate=data.get("corrupt_read_rate", 0.0),
            torn_write_rate=data.get("torn_write_rate", 0.0),
            crash_after_writes=data.get("crash_after_writes"),
            crash_points=data.get("crash_points"),
            enabled=data.get("enabled", True),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule(seed={self.seed}, read_err={self.read_error_rate}, "
            f"corrupt={self.corrupt_read_rate}, torn={self.torn_write_rate}, "
            f"injected={len(self.history)})"
        )


# Pre-image of a page at the start of a journaled operation: enough to put
# content, checksum, and at-rest corruption marker back exactly.
_PreImage = Tuple[list, dict, Optional[int], Optional[str]]


class FaultyBlockDevice(BlockDevice):
    """A :class:`BlockDevice` with checksums, retries, faults and a journal.

    Checksums.  Every committed write stores a CRC32 of the page content;
    every read verifies it.  Corruption — injected in flight, at rest via
    :meth:`corrupt_page`, or left behind by a torn write — surfaces as
    :class:`ChecksumError` instead of a silently wrong answer.

    Retries.  Transient and in-flight faults are retried per the
    :class:`RetryPolicy`; every attempt is a charged read I/O.

    Journal.  ``with device.journaled():`` captures the pre-image of each
    page the operation touches (on first read/write/free) and defers
    frees.  A clean exit commits; an exception rolls back; a
    :class:`SimulatedCrash` leaves the journal dirty for an explicit
    ``rollback_journal()`` — exactly the recovery protocol
    ``SegmentDatabase.recover()`` drives (DESIGN.md §10).

    The journal's contract is the Pager's discipline: an operation
    *fetches* a page (through the device or buffer pool) before mutating
    it, so the pre-image is captured while the shared page object still
    holds pre-operation content.  A page mutated *before* the journaled
    scope opened cannot be restored — no engine does this (every
    ``Pager.operation()`` re-fetches what it touches).
    """

    def __init__(
        self,
        block_capacity: int,
        schedule: Optional[FaultSchedule] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(block_capacity)
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.retry = retry if retry is not None else RetryPolicy()
        self._fingerprints: Dict[int, int] = {}
        self._corrupt: Dict[int, str] = {}
        self.faults_injected = 0
        self.retries = 0
        self.retry_penalty_ios = 0
        self.checksum_failures = 0
        self.transient_failures = 0
        self.torn_writes = 0
        self.crashes = 0
        self._journal: Optional[Dict[int, Optional[_PreImage]]] = None
        self._journal_frees: Dict[int, Page] = {}
        self._needs_recovery = False

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self) -> Page:
        page = super().alloc()
        self._fingerprints[page.page_id] = page_fingerprint(page)
        if self._journal is not None and page.page_id not in self._journal:
            self._journal[page.page_id] = None  # born inside this operation
        return page

    def free(self, page_id: int) -> None:
        if self._journal is None:
            super().free(page_id)
            self._fingerprints.pop(page_id, None)
            self._corrupt.pop(page_id, None)
            return
        # Journaled free: defer the destruction so rollback can resurrect
        # the page, but make it unreachable immediately (reads must fail).
        page = self._pages.get(page_id)
        if page is None:
            raise DoubleFreeError(page_id)
        if page_id not in self._journal:
            self._journal[page_id] = self._pre_image(page_id, page)
        del self._pages[page_id]
        self.frees += 1
        self._journal_frees[page_id] = page

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> Page:
        page = self._pages.get(page_id)
        if page is None:
            raise DanglingPageError(page_id)
        schedule = self.schedule
        retry = self.retry
        attempt = 0
        while True:
            # Charge one read I/O per attempt — same accounting as the
            # base class, so a fault-free read is bit-identical in cost.
            self.reads += 1
            self._charge_tag(self.tag_reads)
            ctx = _trace._ACTIVE
            if ctx is not None:
                ctx.record_read()
            fault = (
                schedule.next_read_fault(page_id, attempt)
                if schedule.enabled
                else None
            )
            if fault is None:
                break
            self.faults_injected += 1
            if attempt < retry.max_retries:
                attempt += 1
                self.retries += 1
                self.retry_penalty_ios += retry.penalty(attempt)
                continue
            if fault == "transient":
                self.transient_failures += 1
                raise TransientIOError(page_id, attempts=attempt + 1)
            self.checksum_failures += 1
            raise ChecksumError(
                page_id, reason="in-flight corruption persisted across retries"
            )
        reason = self._corrupt.get(page_id)
        if reason is not None:
            self.checksum_failures += 1
            raise ChecksumError(page_id, reason=reason)
        expected = self._fingerprints.get(page_id)
        if expected is not None and page_fingerprint(page) != expected:
            self.checksum_failures += 1
            raise ChecksumError(page_id)
        if self._journal is not None and page_id not in self._journal:
            self._journal[page_id] = self._pre_image(page_id, page)
        return page

    def write(self, page: Page) -> None:
        if page.page_id not in self._pages:
            raise DanglingPageError(page.page_id)
        page.validate()
        self.writes += 1
        self._charge_tag(self.tag_writes)
        ctx = _trace._ACTIVE
        if ctx is not None:
            ctx.record_write()
        schedule = self.schedule
        if self._journal is not None:
            if page.page_id not in self._journal:
                self._journal[page.page_id] = self._pre_image(
                    page.page_id, page
                )
            if schedule.enabled and schedule.should_crash_on_write(page.page_id):
                # The power fails mid-write: the I/O was issued, the page
                # is torn, and the operation never completes.
                self.torn_writes += 1
                self._corrupt[page.page_id] = "torn write (crash mid-flush)"
                self.crashes += 1
                raise SimulatedCrash(f"write of page {page.page_id}")
        if schedule.enabled and schedule.next_write_fault(page.page_id) == "torn":
            self.faults_injected += 1
            self.torn_writes += 1
            self._corrupt[page.page_id] = "torn write"
            return
        self._corrupt.pop(page.page_id, None)
        self._fingerprints[page.page_id] = page_fingerprint(page)

    def journal_note_read(self, page: Page) -> None:
        """Capture a pre-image for a read served from the buffer pool.

        A pool cache hit never reaches :meth:`read`, but a journaled
        operation still has to snapshot the page before mutating it.
        """
        if self._journal is not None and page.page_id not in self._journal:
            self._journal[page.page_id] = self._pre_image(page.page_id, page)

    def note_write(self, page: Page) -> None:
        """Refresh the checksum for a write the Pager deduplicated.

        Inside ``Pager.operation()`` only the first write of a page is
        charged; later writes of the same (mutated, shared) object are
        suppressed.  The suppressed flush still has to refresh the
        checksum or the next read would see a stale fingerprint.
        """
        if page.page_id not in self._pages:
            return
        self._corrupt.pop(page.page_id, None)
        self._fingerprints[page.page_id] = page_fingerprint(page)

    # ------------------------------------------------------------------
    # crash points
    # ------------------------------------------------------------------
    def crash_point(self, name: str) -> None:
        """Crash here if the schedule says so (engines call this via Pager)."""
        if self.schedule.enabled and self.schedule.hit_crash_point(name):
            self.crashes += 1
            raise SimulatedCrash(name)

    # ------------------------------------------------------------------
    # explicit corruption (tests, fsck drills)
    # ------------------------------------------------------------------
    def corrupt_page(self, page_id: int, reason: str = "injected bit rot") -> None:
        """Mark a live page corrupt at rest; the next read raises."""
        if page_id not in self._pages:
            raise DanglingPageError(page_id)
        self._corrupt[page_id] = reason
        self.faults_injected += 1
        self.schedule._log("bit-rot", page_id=page_id)

    def verify_pages(self) -> List[Tuple[int, str]]:
        """Offline checksum scan of every live page (charges no I/O).

        Returns ``(page_id, problem)`` pairs; the fsck entry point.
        """
        problems: List[Tuple[int, str]] = []
        for page_id in sorted(self._pages):
            page = self._pages[page_id]
            reason = self._corrupt.get(page_id)
            if reason is not None:
                problems.append((page_id, reason))
                continue
            try:
                page.validate()
            except StorageError as exc:
                problems.append((page_id, str(exc)))
                continue
            expected = self._fingerprints.get(page_id)
            if expected is not None and page_fingerprint(page) != expected:
                problems.append((page_id, "checksum mismatch"))
        return problems

    # ------------------------------------------------------------------
    # operation journal
    # ------------------------------------------------------------------
    @property
    def journal_active(self) -> bool:
        return self._journal is not None

    @property
    def needs_recovery(self) -> bool:
        """True after a crash left the journal dirty."""
        return self._needs_recovery

    def begin_journal(self) -> None:
        if self._journal is not None:
            raise StorageError("operation journal is already open")
        if self._needs_recovery:
            raise StorageError(
                "cannot start an operation over an unrecovered crash"
            )
        self._journal = {}
        self._journal_frees = {}

    def commit_journal(self) -> None:
        """Discard pre-images; deferred frees become permanent."""
        if self._journal is None:
            raise StorageError("no operation journal to commit")
        for page_id in self._journal_frees:
            self._fingerprints.pop(page_id, None)
            self._corrupt.pop(page_id, None)
        self._journal = None
        self._journal_frees = {}
        self._needs_recovery = False

    def rollback_journal(self) -> None:
        """Restore every touched page to its pre-operation image."""
        if self._journal is None:
            raise StorageError("no operation journal to roll back")
        # Resurrect deferred frees first so their pre-images apply.
        for page_id, page in self._journal_frees.items():
            page.cols = None
            page.views = None
            self._pages[page_id] = page
        for page_id, pre in self._journal.items():
            if pre is None:
                # Allocated inside the aborted operation: unwind it.
                self._pages.pop(page_id, None)
                self._fingerprints.pop(page_id, None)
                self._corrupt.pop(page_id, None)
                continue
            page = self._pages.get(page_id)
            if page is None:  # pragma: no cover - defensive
                continue
            items, header, fingerprint, corrupt = pre
            page.items = list(items)
            page.header = dict(header)
            # Direct restore bypasses put_items/set_header; drop the
            # derived caches or they would describe the aborted state.
            page.cols = None
            page.views = None
            if fingerprint is None:
                self._fingerprints.pop(page_id, None)
            else:
                self._fingerprints[page_id] = fingerprint
            if corrupt is None:
                self._corrupt.pop(page_id, None)
            else:
                self._corrupt[page_id] = corrupt
        self._journal = None
        self._journal_frees = {}
        self._needs_recovery = False

    @contextmanager
    def journaled(self):
        """All-or-nothing scope for one update operation.

        Clean exit commits.  A :class:`SimulatedCrash` leaves the journal
        dirty (the "disk" holds a half-applied operation) and re-raises;
        ``rollback_journal()`` — via ``SegmentDatabase.recover()`` — puts
        every page back.  Any other exception rolls back immediately.
        """
        self.begin_journal()
        try:
            yield
        except SimulatedCrash:
            self._needs_recovery = True
            raise
        except BaseException:
            self.rollback_journal()
            raise
        else:
            self.commit_journal()

    def _pre_image(self, page_id: int, page: Page) -> _PreImage:
        return (
            list(page.items),
            dict(page.header),
            self._fingerprints.get(page_id),
            self._corrupt.get(page_id),
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        """Zero the I/O counters and the fault/retry counters with them."""
        super().reset_counters()
        self.faults_injected = 0
        self.retries = 0
        self.retry_penalty_ios = 0
        self.checksum_failures = 0
        self.transient_failures = 0
        self.torn_writes = 0
        self.crashes = 0

    def fault_report(self) -> dict:
        """Fault/retry counters for ``io_report()`` and the chaos CLI."""
        if self._needs_recovery:
            journal = "needs-recovery"
        elif self._journal is not None:
            journal = "open"
        else:
            journal = "clean"
        return {
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "retry_penalty_ios": self.retry_penalty_ios,
            "checksum_failures": self.checksum_failures,
            "transient_failures": self.transient_failures,
            "torn_writes": self.torn_writes,
            "crashes": self.crashes,
            "corrupt_pages": len(self._corrupt),
            "journal": journal,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyBlockDevice(B={self.block_capacity}, "
            f"pages={self.pages_in_use}, faults={self.faults_injected}, "
            f"retries={self.retries})"
        )
