"""Versioned, checksummed binary snapshots of a built page store.

The paper's engines are expensive to build (``O(N log N)`` with large
constants) and cheap to serve — exactly the profile that makes
build-once/open-many persistence worthwhile (cf. the persistent
external-memory search trees of Brodal et al.).  A snapshot captures one
:class:`~repro.iosim.disk.BlockDevice` — every live page plus the
allocator cursor — together with a small engine-metadata dict, in a
single file that ``SegmentDatabase.open()`` can restore without ever
touching the builder.

File layout (all integers big-endian)::

    offset  size  field
    0       8     magic  b"REPROSNP"
    8       4     format version (currently 1)
    12      8     payload length in bytes
    20      4     CRC32 of the payload bytes
    24      ...   payload: pickled snapshot dict

The payload is one pickle holding the metadata, the pages as
``(page_id, items, header)`` triples, and a per-page CRC computed with
:func:`~repro.iosim.faults.page_fingerprint` — the same checksum the
fault layer maintains at rest — so verification on load has two
independent layers: the file CRC catches truncation and bit rot in the
container, the per-page fingerprints catch anything that slipped through
(or a pickle that decoded into different content).  Every failure mode
raises a typed :class:`~repro.iosim.errors.SnapshotFormatError`.

Pages are pickled as a single object graph, so item objects shared
between pages (a :class:`~repro.geometry.segment.Segment` referenced by
several structures, say) stay shared after a round trip — the restored
store is isomorphic to the saved one, not just equal page by page.
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib
from typing import Any, Dict, Tuple

from .disk import BlockDevice
from .errors import SnapshotFormatError
from .faults import page_fingerprint
from .page import Page

MAGIC = b"REPROSNP"
FORMAT_VERSION = 1
_HEADER = struct.Struct(">8sIQI")  # magic, version, payload length, CRC32


def save_device(path: str, device: BlockDevice, meta: Dict[str, Any]) -> int:
    """Serialize ``device``'s live pages plus ``meta`` to ``path``.

    ``meta`` is the caller's engine metadata (engine name, root page ids,
    segment count, ...); it must be picklable and is returned verbatim by
    :func:`load_device`.  Returns the number of bytes written.
    """
    pages = sorted(device.iter_pages(), key=lambda p: p.page_id)
    payload_obj = {
        "meta": meta,
        "block_capacity": device.block_capacity,
        "next_id": device._next_id,
        "pages": [(p.page_id, p.items, p.header) for p in pages],
        "page_crcs": {p.page_id: page_fingerprint(p) for p in pages},
    }
    payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(payload),
                              zlib.crc32(payload)))
        fh.write(payload)
    return _HEADER.size + len(payload)


def load_device(path: str) -> Tuple[BlockDevice, Dict[str, Any]]:
    """Restore ``(device, meta)`` from a snapshot written by
    :func:`save_device`.

    Verification order: magic → version → payload length → file CRC →
    unpickle → per-page fingerprint.  Any mismatch raises
    :class:`SnapshotFormatError`; a clean load returns a fresh
    :class:`BlockDevice` with zeroed I/O counters (restoring a snapshot
    is free in the cost model, like ``bulk_load``'s post-build reset).
    """
    try:
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise SnapshotFormatError(path, "file shorter than the header")
            magic, version, length, crc = _HEADER.unpack(header)
            if magic != MAGIC:
                raise SnapshotFormatError(
                    path, f"bad magic {magic!r} (not a repro snapshot)"
                )
            if version != FORMAT_VERSION:
                raise SnapshotFormatError(
                    path,
                    f"unsupported format version {version} "
                    f"(this build reads version {FORMAT_VERSION})",
                )
            payload = fh.read(length + 1)
    except OSError as exc:
        raise SnapshotFormatError(path, f"unreadable: {exc}") from exc
    if len(payload) != length:
        raise SnapshotFormatError(
            path,
            f"payload truncated or padded: expected {length} bytes, "
            f"found {len(payload)}",
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotFormatError(path, "payload CRC mismatch (corrupt file)")
    try:
        payload_obj = _restricted_loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise SnapshotFormatError(path, f"undecodable payload: {exc}") from exc
    try:
        block_capacity = payload_obj["block_capacity"]
        next_id = payload_obj["next_id"]
        pages = payload_obj["pages"]
        page_crcs = payload_obj["page_crcs"]
        meta = payload_obj["meta"]
    except (TypeError, KeyError) as exc:
        raise SnapshotFormatError(path, f"missing field: {exc}") from exc

    device = BlockDevice(block_capacity)
    for page_id, items, header in pages:
        page = Page(page_id, block_capacity)
        page.items = items
        page.header = header
        expected = page_crcs.get(page_id)
        if expected is None or page_fingerprint(page) != expected:
            raise SnapshotFormatError(
                path, f"page {page_id}: checksum mismatch"
            )
        device._pages[page_id] = page
    device._next_id = max(
        next_id, max(device._pages, default=-1) + 1
    )
    return device, meta


#: Modules a snapshot payload is allowed to resolve globals from.  A
#: snapshot only ever contains this library's value types (plus stdlib
#: scalars), so anything else in the stream is treated as damage, not
#: data — ``pickle.loads`` on a hostile file is an RCE otherwise.
_ALLOWED_MODULE_PREFIXES = ("repro.", "fractions", "builtins", "collections")


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        if module.split(".")[0] + "." in _ALLOWED_MODULE_PREFIXES or module in (
            "fractions", "builtins", "collections",
        ):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"snapshot references forbidden global {module}.{name}"
        )


def _restricted_loads(payload: bytes):
    return _RestrictedUnpickler(io.BytesIO(payload)).load()
