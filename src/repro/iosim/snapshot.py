"""Versioned, checksummed binary snapshots of a built page store.

The paper's engines are expensive to build (``O(N log N)`` with large
constants) and cheap to serve — exactly the profile that makes
build-once/open-many persistence worthwhile (cf. the persistent
external-memory search trees of Brodal et al.).  A snapshot captures one
:class:`~repro.iosim.disk.BlockDevice` — every live page plus the
allocator cursor — together with a small engine-metadata dict, in a
single file that ``SegmentDatabase.open()`` can restore without ever
touching the builder.

File layout (all integers big-endian)::

    offset  size  field
    0       8     magic  b"REPROSNP"
    8       4     format version
    12      8     payload length in bytes
    20      4     CRC32 of the payload bytes
    24      ...   payload

Two payload formats exist behind the same container:

* **version 2 (current)** — the payload is a *flat page arena*
  (:mod:`repro.iosim.arena`): one contiguous region with a fixed-width
  offset/length/fingerprint table, each page an independent blob.  The
  arena is what shared-memory serving maps once and attaches to in
  O(1); ``load_device`` decodes it eagerly so the single-process open
  path behaves exactly like version 1.
* **version 1 (legacy, still readable)** — the payload is one pickled
  dict holding all pages as a single object graph.  Cross-page item
  identity survives a v1 round trip (a v2 round trip preserves identity
  only within a page); results and per-query I/O are identical either
  way.

Verification has two independent layers in both formats: the file CRC
catches truncation and bit rot in the container; per-page fingerprints
(:func:`~repro.iosim.faults.page_fingerprint`, the same checksum the
fault layer maintains at rest) catch anything that slipped through, or
a blob that decoded into different content.  Every failure mode raises
a typed :class:`~repro.iosim.errors.SnapshotFormatError`.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Dict, Tuple

from .arena import ArenaView, build_arena, restricted_loads
from .disk import BlockDevice
from .errors import SnapshotFormatError
from .faults import page_fingerprint
from .page import Page

MAGIC = b"REPROSNP"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
_HEADER = struct.Struct(">8sIQI")  # magic, version, payload length, CRC32


def save_device(path: str, device: BlockDevice, meta: Dict[str, Any],
                format_version: int = FORMAT_VERSION) -> int:
    """Serialize ``device``'s live pages plus ``meta`` to ``path``.

    ``meta`` is the caller's engine metadata (engine name, root page ids,
    segment count, ...); it must be picklable and is returned verbatim by
    :func:`load_device`.  ``format_version`` selects the payload format
    (2 writes the flat arena; 1 writes the legacy object-graph pickle
    for tooling that must preserve cross-page item identity).  Returns
    the number of bytes written.
    """
    if format_version not in SUPPORTED_VERSIONS:
        raise ValueError(f"cannot write snapshot format {format_version}; "
                         f"supported: {SUPPORTED_VERSIONS}")
    if format_version == 1:
        payload = _encode_v1(device, meta)
    else:
        payload = build_arena(device, meta)
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, format_version, len(payload),
                              zlib.crc32(payload)))
        fh.write(payload)
    return _HEADER.size + len(payload)


def _read_payload(path: str) -> Tuple[int, bytes]:
    """Read and container-verify a snapshot file: ``(version, payload)``.

    Verification order: magic → version → payload length → file CRC.
    """
    try:
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise SnapshotFormatError(path, "file shorter than the header")
            magic, version, length, crc = _HEADER.unpack(header)
            if magic != MAGIC:
                raise SnapshotFormatError(
                    path, f"bad magic {magic!r} (not a repro snapshot)"
                )
            if version not in SUPPORTED_VERSIONS:
                raise SnapshotFormatError(
                    path,
                    f"unsupported format version {version} "
                    f"(this build reads versions {SUPPORTED_VERSIONS})",
                )
            payload = fh.read(length + 1)
    except OSError as exc:
        raise SnapshotFormatError(path, f"unreadable: {exc}") from exc
    if len(payload) != length:
        raise SnapshotFormatError(
            path,
            f"payload truncated or padded: expected {length} bytes, "
            f"found {len(payload)}",
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotFormatError(path, "payload CRC mismatch (corrupt file)")
    return version, payload


def load_device(path: str) -> Tuple[BlockDevice, Dict[str, Any]]:
    """Restore ``(device, meta)`` from a snapshot written by
    :func:`save_device` (either format version).

    Any damage raises :class:`SnapshotFormatError`; a clean load returns
    a fresh :class:`BlockDevice` with zeroed I/O counters (restoring a
    snapshot is free in the cost model, like ``bulk_load``'s post-build
    reset).
    """
    version, payload = _read_payload(path)
    if version == 1:
        return _decode_v1(path, payload)
    view = ArenaView(payload, source=path)
    device = view.materialize()
    return device, view.meta


def read_arena(path: str) -> bytes:
    """The container-verified arena payload of a snapshot, as bytes.

    This is what shared-memory serving copies into a segment once per
    shard.  A version-2 file hands back its payload verbatim; a legacy
    version-1 file is decoded and re-encoded as an arena, so old
    snapshots serve through the zero-copy path too (paying one
    conversion in the parent, never per worker).
    """
    version, payload = _read_payload(path)
    if version == 2:
        # Parse eagerly: a damaged arena must fail here, in the process
        # that owns the file, not later inside a worker.
        ArenaView(payload, source=path)
        return payload
    device, meta = _decode_v1(path, payload)
    return build_arena(device, meta)


# ----------------------------------------------------------------------
# legacy version-1 payload (object-graph pickle)
# ----------------------------------------------------------------------
def _encode_v1(device: BlockDevice, meta: Dict[str, Any]) -> bytes:
    pages = sorted(device.iter_pages(), key=lambda p: p.page_id)
    payload_obj = {
        "meta": meta,
        "block_capacity": device.block_capacity,
        "next_id": device._next_id,
        "pages": [(p.page_id, p.items, p.header) for p in pages],
        "page_crcs": {p.page_id: page_fingerprint(p) for p in pages},
    }
    return pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_v1(path: str, payload: bytes) -> Tuple[BlockDevice, Dict[str, Any]]:
    try:
        payload_obj = restricted_loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise SnapshotFormatError(path, f"undecodable payload: {exc}") from exc
    try:
        block_capacity = payload_obj["block_capacity"]
        next_id = payload_obj["next_id"]
        pages = payload_obj["pages"]
        page_crcs = payload_obj["page_crcs"]
        meta = payload_obj["meta"]
    except (TypeError, KeyError) as exc:
        raise SnapshotFormatError(path, f"missing field: {exc}") from exc

    device = BlockDevice(block_capacity)
    for page_id, items, header in pages:
        page = Page(page_id, block_capacity)
        page.items = items
        page.header = header
        expected = page_crcs.get(page_id)
        if expected is None or page_fingerprint(page) != expected:
            raise SnapshotFormatError(
                path, f"page {page_id}: checksum mismatch"
            )
        device._pages[page_id] = page
    device._next_id = max(
        next_id, max(device._pages, default=-1) + 1
    )
    return device, meta
