"""I/O statistics: snapshots, diffs and scoped measurement.

The unit of cost throughout the library is the *I/O operation* — reading or
writing one block — exactly as in the paper's model.  :class:`IOStats` is an
immutable snapshot of a device's counters; subtracting two snapshots gives
the cost of the work performed between them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOStats:
    """An immutable snapshot of block-device counters."""

    reads: int = 0
    writes: int = 0
    allocs: int = 0
    frees: int = 0

    @property
    def total(self) -> int:
        """Total I/O operations (reads + writes)."""
        return self.reads + self.writes

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            allocs=self.allocs - other.allocs,
            frees=self.frees - other.frees,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            allocs=self.allocs + other.allocs,
            frees=self.frees + other.frees,
        )

    def to_dict(self) -> dict:
        """Plain-dict form for JSON exporters and benchmark archives."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "allocs": self.allocs,
            "frees": self.frees,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IOStats":
        """Inverse of :meth:`to_dict` (extra keys are rejected)."""
        unknown = set(data) - {"reads", "writes", "allocs", "frees"}
        if unknown:
            raise ValueError(f"unknown IOStats fields: {sorted(unknown)}")
        return cls(
            reads=data.get("reads", 0),
            writes=data.get("writes", 0),
            allocs=data.get("allocs", 0),
            frees=data.get("frees", 0),
        )

    def __str__(self) -> str:
        return (
            f"reads={self.reads} writes={self.writes} "
            f"allocs={self.allocs} frees={self.frees}"
        )


class Measurement:
    """Scoped I/O measurement around a block device.

    Use as a context manager::

        with Measurement(device) as m:
            index.query(q)
        print(m.stats.reads)

    The measurement is cheap (two snapshots) and nestable.
    """

    def __init__(self, device):
        self._device = device
        self._start: IOStats | None = None
        self.stats: IOStats = IOStats()

    def __enter__(self) -> "Measurement":
        self._start = self._device.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stats = self._device.snapshot() - self._start
