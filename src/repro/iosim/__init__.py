"""Simulated block storage with I/O accounting.

This package implements the paper's cost model: data lives in blocks of
``B`` items; the cost of an algorithm is the number of blocks read and
written.  See DESIGN.md §5 for the accounting conventions and §10 for
the fault model and crash-consistency protocol.
"""

from .buffer import LRUBufferPool
from .disk import BlockDevice
from .errors import (
    ChecksumError,
    DanglingPageError,
    DoubleFreeError,
    PageOverflowError,
    PinnedPageError,
    RecoveryPendingError,
    SimulatedCrash,
    StorageError,
    TransientIOError,
)
from .faults import FaultSchedule, FaultyBlockDevice, RetryPolicy, page_fingerprint
from .page import HEADER_SLOTS, Page
from .pager import Pager
from .stats import IOStats, Measurement

__all__ = [
    "BlockDevice",
    "ChecksumError",
    "DanglingPageError",
    "DoubleFreeError",
    "FaultSchedule",
    "FaultyBlockDevice",
    "HEADER_SLOTS",
    "IOStats",
    "LRUBufferPool",
    "Measurement",
    "Page",
    "PageOverflowError",
    "Pager",
    "PinnedPageError",
    "RecoveryPendingError",
    "RetryPolicy",
    "SimulatedCrash",
    "StorageError",
    "TransientIOError",
    "page_fingerprint",
]
