"""Simulated block storage with I/O accounting.

This package implements the paper's cost model: data lives in blocks of
``B`` items; the cost of an algorithm is the number of blocks read and
written.  See DESIGN.md §5 for the accounting conventions.
"""

from .buffer import LRUBufferPool
from .disk import BlockDevice
from .errors import (
    DanglingPageError,
    DoubleFreeError,
    PageOverflowError,
    StorageError,
)
from .page import HEADER_SLOTS, Page
from .pager import Pager
from .stats import IOStats, Measurement

__all__ = [
    "BlockDevice",
    "DanglingPageError",
    "DoubleFreeError",
    "HEADER_SLOTS",
    "IOStats",
    "LRUBufferPool",
    "Measurement",
    "Page",
    "PageOverflowError",
    "Pager",
    "StorageError",
]
