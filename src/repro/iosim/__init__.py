"""Simulated block storage with I/O accounting.

This package implements the paper's cost model: data lives in blocks of
``B`` items; the cost of an algorithm is the number of blocks read and
written.  See DESIGN.md §5 for the accounting conventions and §10 for
the fault model and crash-consistency protocol.
"""

from .buffer import LRUBufferPool
from .disk import BlockDevice
from .errors import (
    ChecksumError,
    DanglingPageError,
    DoubleFreeError,
    PageOverflowError,
    PinnedPageError,
    RecoveryPendingError,
    SimulatedCrash,
    SnapshotFormatError,
    StorageError,
    TransientIOError,
)
from .faults import FaultSchedule, FaultyBlockDevice, RetryPolicy, page_fingerprint
from .page import HEADER_SLOTS, Page
from .pager import Pager
from .snapshot import FORMAT_VERSION as SNAPSHOT_FORMAT_VERSION
from .snapshot import load_device, save_device
from .stats import IOStats, Measurement

__all__ = [
    "BlockDevice",
    "ChecksumError",
    "DanglingPageError",
    "DoubleFreeError",
    "FaultSchedule",
    "FaultyBlockDevice",
    "HEADER_SLOTS",
    "IOStats",
    "LRUBufferPool",
    "Measurement",
    "Page",
    "PageOverflowError",
    "Pager",
    "PinnedPageError",
    "RecoveryPendingError",
    "RetryPolicy",
    "SNAPSHOT_FORMAT_VERSION",
    "SimulatedCrash",
    "SnapshotFormatError",
    "StorageError",
    "TransientIOError",
    "load_device",
    "page_fingerprint",
    "save_device",
]
