"""Simulated block storage with I/O accounting.

This package implements the paper's cost model: data lives in blocks of
``B`` items; the cost of an algorithm is the number of blocks read and
written.  See DESIGN.md §5 for the accounting conventions and §10 for
the fault model and crash-consistency protocol.
"""

from .arena import (
    ARENA_VERSION,
    ArenaBlockDevice,
    ArenaView,
    build_arena,
    restricted_loads,
)
from .buffer import LRUBufferPool
from .disk import BlockDevice
from .errors import (
    ChecksumError,
    DanglingPageError,
    DoubleFreeError,
    PageOverflowError,
    PinnedPageError,
    RecoveryPendingError,
    SimulatedCrash,
    SnapshotFormatError,
    StorageError,
    TransientIOError,
)
from .faults import FaultSchedule, FaultyBlockDevice, RetryPolicy, page_fingerprint
from .page import HEADER_SLOTS, Page
from .pager import Pager
from .snapshot import FORMAT_VERSION as SNAPSHOT_FORMAT_VERSION
from .snapshot import load_device, read_arena, save_device
from .stats import IOStats, Measurement

__all__ = [
    "ARENA_VERSION",
    "ArenaBlockDevice",
    "ArenaView",
    "BlockDevice",
    "build_arena",
    "ChecksumError",
    "DanglingPageError",
    "DoubleFreeError",
    "FaultSchedule",
    "FaultyBlockDevice",
    "HEADER_SLOTS",
    "IOStats",
    "LRUBufferPool",
    "Measurement",
    "Page",
    "PageOverflowError",
    "Pager",
    "PinnedPageError",
    "RecoveryPendingError",
    "RetryPolicy",
    "SNAPSHOT_FORMAT_VERSION",
    "SimulatedCrash",
    "SnapshotFormatError",
    "StorageError",
    "TransientIOError",
    "load_device",
    "page_fingerprint",
    "read_arena",
    "restricted_loads",
    "save_device",
]
