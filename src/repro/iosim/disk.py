"""The simulated block device.

:class:`BlockDevice` is the single point where I/O cost accrues.  Every data
structure in this library stores its nodes in pages allocated from one
device and pays one *read* per block fetched and one *write* per block
flushed — the quantity the paper's complexity bounds count.

The device also tracks the number of live pages, which is the library's
measure of *space* (the paper's ``O(n)`` / ``O(n log2 B)`` storage bounds are
in blocks).
"""

from __future__ import annotations

from typing import Dict, List

from ..telemetry import trace as _trace
from .errors import DanglingPageError, DoubleFreeError
from .page import Page
from .stats import IOStats


class _TagScope:
    """``with device.tagged(tag):`` — attribution scope as a slotted
    class (the generator-based form taxed every node visit on the hot
    query paths).  Opens a telemetry span of the same name when a trace
    is active, exactly like the old ``@contextmanager`` body."""

    __slots__ = ("_device", "_tag", "_span_cm")

    def __init__(self, device: "BlockDevice", tag: str):
        self._device = device
        self._tag = tag
        self._span_cm = None

    def __enter__(self) -> None:
        self._device._tags.append(self._tag)
        ctx = _trace._ACTIVE
        if ctx is not None:
            span_cm = ctx.span(self._tag)
            try:
                span_cm.__enter__()
            except BaseException:
                self._device._tags.pop()
                raise
            self._span_cm = span_cm

    def __exit__(self, exc_type, exc, tb) -> bool:
        span_cm = self._span_cm
        if span_cm is not None:
            self._span_cm = None
            try:
                span_cm.__exit__(exc_type, exc, tb)
            finally:
                self._device._tags.pop()
        else:
            self._device._tags.pop()
        return False


class BlockDevice:
    """An in-memory store of fixed-capacity pages with I/O counters.

    Parameters
    ----------
    block_capacity:
        The paper's ``B``: the number of data items one block holds.

    Beside the global counters, I/Os can be *attributed*: inside a
    ``with device.tagged("G"):`` scope every read/write also increments the
    named bucket (innermost tag wins), so a query's cost can be decomposed
    into the structures that incurred it (see benchmark E14).
    """

    def __init__(self, block_capacity: int):
        if block_capacity < 2:
            raise ValueError(f"block capacity must be >= 2, got {block_capacity}")
        self.block_capacity = block_capacity
        self._pages: Dict[int, Page] = {}
        self._next_id = 0
        self.reads = 0
        self.writes = 0
        self.allocs = 0
        self.frees = 0
        self._tags: List[str] = []
        self.tag_reads: Dict[str, int] = {}
        self.tag_writes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # attribution
    # ------------------------------------------------------------------
    def tagged(self, tag: str) -> _TagScope:
        """Attribute I/O inside the scope to ``tag`` (innermost tag wins).

        When a telemetry trace is active the scope also opens a span of
        the same name, so every tagged call-site doubles as a trace
        phase without further instrumentation.
        """
        return _TagScope(self, tag)

    def _charge_tag(self, bucket: Dict[str, int]) -> None:
        if self._tags:
            tag = self._tags[-1]
            bucket[tag] = bucket.get(tag, 0) + 1

    def tag_snapshot(self) -> Dict[str, int]:
        """Total attributed I/O per tag (reads + writes)."""
        out = dict(self.tag_reads)
        for tag, count in self.tag_writes.items():
            out[tag] = out.get(tag, 0) + count
        return out

    def reset_tags(self) -> None:
        self.tag_reads = {}
        self.tag_writes = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self) -> Page:
        """Allocate a fresh, empty page.

        Allocation itself is free in the paper's model (the page must still
        be *written* before it holds data); we count allocations separately
        so space accounting and leak tests can use them.
        """
        page = Page(self._next_id, self.block_capacity)
        self._pages[self._next_id] = page
        self._next_id += 1
        self.allocs += 1
        return page

    def free(self, page_id: int) -> None:
        """Release a page.  Reading it afterwards raises."""
        if page_id not in self._pages:
            raise DoubleFreeError(page_id)
        del self._pages[page_id]
        self.frees += 1

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> Page:
        """Fetch one block from disk: costs one read I/O."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise DanglingPageError(page_id) from None
        self.reads += 1
        self._charge_tag(self.tag_reads)
        ctx = _trace._ACTIVE
        if ctx is not None:
            ctx.record_read()
        return page

    def write(self, page: Page) -> None:
        """Flush one block to disk: costs one write I/O."""
        if page.page_id not in self._pages:
            raise DanglingPageError(page.page_id)
        page.validate()
        self.writes += 1
        self._charge_tag(self.tag_writes)
        ctx = _trace._ACTIVE
        if ctx is not None:
            ctx.record_write()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def pages_in_use(self) -> int:
        """Number of live blocks — the library's measure of space."""
        return len(self._pages)

    def snapshot(self) -> IOStats:
        return IOStats(
            reads=self.reads, writes=self.writes, allocs=self.allocs, frees=self.frees
        )

    def reset_counters(self) -> None:
        """Zero the I/O counters (space accounting is unaffected).

        Per-tag attribution buckets are part of the I/O counters and are
        cleared too — otherwise attribution from one benchmark phase
        leaks into the next.  Use :meth:`reset_tags` to clear only the
        buckets.
        """
        self.reads = 0
        self.writes = 0
        self.allocs = 0
        self.frees = 0
        self.reset_tags()

    def iter_pages(self) -> Iterator[Page]:
        """Iterate live pages without charging I/O (for tests/diagnostics)."""
        return iter(self._pages.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockDevice(B={self.block_capacity}, pages={self.pages_in_use}, "
            f"reads={self.reads}, writes={self.writes})"
        )
