"""Errors raised by the simulated block-storage layer."""


class StorageError(Exception):
    """Base class for every error raised by :mod:`repro.iosim`."""


class PageOverflowError(StorageError):
    """Raised when more than ``B`` items are written into a single page.

    The paper's cost model assumes that a node the analysis says "fits in one
    block" really does fit.  Enforcing the capacity at write time keeps the
    simulator honest: a structure cannot silently cheat by packing an
    unbounded amount of data into one simulated I/O.
    """

    def __init__(self, page_id: int, size: int, capacity: int):
        self.page_id = page_id
        self.size = size
        self.capacity = capacity
        super().__init__(
            f"page {page_id} holds {size} items but capacity is {capacity}"
        )


class DanglingPageError(StorageError):
    """Raised when reading a page id that was never allocated or was freed."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        super().__init__(f"page {page_id} is not allocated")


class DoubleFreeError(StorageError):
    """Raised when freeing a page id that is not currently allocated."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        super().__init__(f"page {page_id} freed twice (or never allocated)")


class PinnedPageError(StorageError):
    """Raised when freeing a page that still holds buffer-pool pins.

    A pinned page is one some caller expects to stay resident; freeing it
    out from under them is a use-after-free in the making, so the pool
    refuses instead of silently dropping the pin.
    """

    def __init__(self, page_id: int, pins: int):
        self.page_id = page_id
        self.pins = pins
        super().__init__(
            f"page {page_id} is freed while holding {pins} pin(s)"
        )


class TransientIOError(StorageError):
    """A read failed transiently and retries were exhausted.

    The device already charged one read I/O per attempt; catching this and
    retrying at a higher level would double-pay, so callers should treat it
    as terminal for the current operation.
    """

    def __init__(self, page_id: int, attempts: int):
        self.page_id = page_id
        self.attempts = attempts
        super().__init__(
            f"page {page_id}: transient read error persisted across "
            f"{attempts} attempt(s)"
        )


class ChecksumError(StorageError):
    """A page's content no longer matches its stored checksum.

    Raised by :class:`~repro.iosim.faults.FaultyBlockDevice` when a read
    surfaces at-rest corruption (bit rot, a torn write) that retrying
    cannot fix.  The index over the page is no longer trustworthy; see
    ``SegmentDatabase.fsck()`` / quarantine.
    """

    def __init__(self, page_id: int, reason: str = "checksum mismatch"):
        self.page_id = page_id
        self.reason = reason
        super().__init__(f"page {page_id}: {reason}")


class SimulatedCrash(StorageError):
    """An injected crash aborted the current operation mid-flight.

    Deliberately *not* caught by the storage layer: it unwinds to the top
    so the in-memory structures are abandoned exactly where the "power
    failed".  The device's operation journal stays dirty; call
    ``SegmentDatabase.recover()`` before touching the index again.
    """

    def __init__(self, where: str):
        self.where = where
        super().__init__(f"simulated crash at {where!r}")


class RecoveryPendingError(StorageError):
    """The database crashed mid-update and has not been recovered yet.

    Serving queries from a half-applied update could be silently wrong,
    so every access is refused until ``recover()`` runs.
    """

    def __init__(self) -> None:
        super().__init__(
            "a crashed update left the journal dirty; call recover() first"
        )


class SnapshotFormatError(StorageError):
    """A snapshot file cannot be trusted: wrong magic, an unsupported
    version, a truncated payload, a failed file CRC, or a page whose
    content no longer matches its stored checksum.

    Opening a damaged snapshot must fail loudly *before* any query runs
    over it — a snapshot is the one artifact that crosses process (and
    machine) boundaries, so it gets the strictest verification.
    """

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"snapshot {path!r}: {reason}")
