"""Errors raised by the simulated block-storage layer."""


class StorageError(Exception):
    """Base class for every error raised by :mod:`repro.iosim`."""


class PageOverflowError(StorageError):
    """Raised when more than ``B`` items are written into a single page.

    The paper's cost model assumes that a node the analysis says "fits in one
    block" really does fit.  Enforcing the capacity at write time keeps the
    simulator honest: a structure cannot silently cheat by packing an
    unbounded amount of data into one simulated I/O.
    """

    def __init__(self, page_id: int, size: int, capacity: int):
        self.page_id = page_id
        self.size = size
        self.capacity = capacity
        super().__init__(
            f"page {page_id} holds {size} items but capacity is {capacity}"
        )


class DanglingPageError(StorageError):
    """Raised when reading a page id that was never allocated or was freed."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        super().__init__(f"page {page_id} is not allocated")


class DoubleFreeError(StorageError):
    """Raised when freeing a page id that is not currently allocated."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        super().__init__(f"page {page_id} freed twice (or never allocated)")
