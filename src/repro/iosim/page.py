"""A fixed-capacity disk page.

A :class:`Page` models one block of secondary storage in the paper's I/O
model.  It holds at most ``capacity`` *items* (the paper's parameter ``B``)
plus a small constant-size *header* of routing information (child pointers,
separator values, balance counters).  The header is not counted against the
item capacity, mirroring the usual convention that ``B`` measures data items
per block while a block also carries O(1) bookkeeping words.

Pages are plain containers; all I/O accounting happens in
:class:`repro.iosim.disk.BlockDevice`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from .errors import PageOverflowError

#: Maximum number of header entries a page may carry.  The paper allows O(1)
#: routing words per block; 64 is a generous constant that still catches a
#: structure trying to smuggle Θ(B) data through the header.
HEADER_SLOTS = 64


class Page:
    """One block of simulated secondary storage.

    Parameters
    ----------
    page_id:
        Identifier assigned by the owning :class:`BlockDevice`.
    capacity:
        Maximum number of payload items (the paper's ``B``).
    """

    __slots__ = ("page_id", "capacity", "items", "header", "cols", "views")

    def __init__(self, page_id: int, capacity: int):
        self.page_id = page_id
        self.capacity = capacity
        self.items: List[Any] = []
        self.header: Dict[str, Any] = {}
        #: Lazily-built columnar mirror of ``items`` (``(kind, columns)``,
        #: see :mod:`repro.geometry.kernels`).  Pure cache: never
        #: serialized, never fingerprinted, dropped on any payload write.
        self.cols = None
        #: Cache of decoded per-page structures (attached second-level
        #: indexes, node views, frames) keyed by the owner.  Same
        #: contract as ``cols``, but additionally dropped on header
        #: writes — the cached objects decode routing words.
        self.views = None

    # ------------------------------------------------------------------
    # payload
    # ------------------------------------------------------------------
    def put_items(self, items: Iterable[Any]) -> None:
        """Replace the page payload, enforcing the capacity bound."""
        new_items = list(items)
        if len(new_items) > self.capacity:
            raise PageOverflowError(self.page_id, len(new_items), self.capacity)
        self.items = new_items
        self.cols = None
        self.views = None

    def append_item(self, item: Any) -> None:
        """Append one item, enforcing the capacity bound."""
        if len(self.items) + 1 > self.capacity:
            raise PageOverflowError(self.page_id, len(self.items) + 1, self.capacity)
        self.items.append(item)
        self.cols = None
        self.views = None

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.items)

    def __len__(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------------
    # header
    # ------------------------------------------------------------------
    def set_header(self, key: str, value: Any) -> None:
        """Store an O(1) routing word in the page header."""
        self.header[key] = value
        self.views = None
        if len(self.header) > HEADER_SLOTS:
            raise PageOverflowError(self.page_id, len(self.header), HEADER_SLOTS)

    def get_header(self, key: str, default: Any = None) -> Any:
        return self.header.get(key, default)

    def validate(self) -> None:
        """Re-check the capacity invariants (used by failure-injection tests)."""
        if len(self.items) > self.capacity:
            raise PageOverflowError(self.page_id, len(self.items), self.capacity)
        if len(self.header) > HEADER_SLOTS:
            raise PageOverflowError(self.page_id, len(self.header), HEADER_SLOTS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Page(id={self.page_id}, items={len(self.items)}/{self.capacity}, "
            f"header_keys={sorted(self.header)})"
        )
