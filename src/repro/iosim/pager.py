"""Operation-scoped page access.

The paper counts one I/O per *node visit*.  Within a single logical operation
(one query, one insertion) a well-implemented algorithm keeps the handful of
blocks it is actively working on pinned in memory, so touching the same block
twice inside one operation costs one I/O, not two.  :class:`Pager` models
exactly that: inside a ``with pager.operation():`` scope, the first fetch of
each distinct page is charged to the device and later fetches are free;
writes to a page are likewise charged once per operation (flush-on-complete
semantics).

Outside an operation scope every fetch and write is charged — the
conservative default.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Set

from ..telemetry import trace as _trace
from .disk import BlockDevice
from .page import Page


class Pager:
    """Charged access to a :class:`BlockDevice` with per-operation pinning."""

    def __init__(self, device: BlockDevice):
        self.device = device
        self._pinned: Optional[Dict[int, Page]] = None
        self._dirty: Optional[Set[int]] = None
        self._depth = 0

    # ------------------------------------------------------------------
    # operation scope
    # ------------------------------------------------------------------
    @contextmanager
    def operation(self) -> Iterator[None]:
        """Scope one logical operation; nested scopes join the outermost."""
        self._depth += 1
        if self._depth == 1:
            self._pinned = {}
            self._dirty = set()
        try:
            yield
        finally:
            self._depth -= 1
            if self._depth == 0:
                self._pinned = None
                self._dirty = None

    @property
    def in_operation(self) -> bool:
        return self._depth > 0

    # ------------------------------------------------------------------
    # charged access
    # ------------------------------------------------------------------
    def fetch(self, page_id: int) -> Page:
        """Read a page; within an operation, re-reads of a pinned page are free."""
        if self._pinned is not None:
            cached = self._pinned.get(page_id)
            if cached is not None:
                ctx = _trace._ACTIVE
                if ctx is not None:
                    ctx.record_pin()
                return cached
            page = self.device.read(page_id)
            self._pinned[page_id] = page
            return page
        return self.device.read(page_id)

    def write(self, page: Page) -> None:
        """Write a page; within an operation each page is flushed once."""
        if self._dirty is not None:
            if page.page_id in self._dirty:
                page.validate()
                # The charged flush already happened, but a fault-aware
                # device still needs its checksum refreshed to the final
                # content (pages are shared, mutated-in-place objects).
                note = getattr(self.device, "note_write", None)
                if note is not None:
                    note(page)
                return
            self._dirty.add(page.page_id)
            if self._pinned is not None:
                self._pinned[page.page_id] = page
        self.device.write(page)

    def alloc(self) -> Page:
        """Allocate a fresh page (free; it must still be written)."""
        page = self.device.alloc()
        if self._pinned is not None:
            self._pinned[page.page_id] = page
        return page

    def free(self, page_id: int) -> None:
        self.device.free(page_id)
        if self._pinned is not None:
            self._pinned.pop(page_id, None)
        if self._dirty is not None:
            self._dirty.discard(page_id)

    # ------------------------------------------------------------------
    # buffer-pool pinning (no-ops on a bare device)
    # ------------------------------------------------------------------
    def pin(self, page_id: int) -> bool:
        """Pin a page in the underlying buffer pool, if there is one.

        Returns ``True`` when a pool actually took the pin.  On a bare
        :class:`BlockDevice` this is a no-op — the Pager's own
        per-operation dedupe is the only "memory" the paper's model
        grants — so callers can pin unconditionally.
        """
        pin = getattr(self.device, "pin", None)
        if pin is None:
            return False
        pin(page_id)
        return True

    def unpin(self, page_id: int) -> None:
        unpin = getattr(self.device, "unpin", None)
        if unpin is not None:
            unpin(page_id)

    @contextmanager
    def pinning(self, page_id: int) -> Iterator[None]:
        """Hold a buffer-pool pin on ``page_id`` for the scope."""
        took = self.pin(page_id)
        try:
            yield
        finally:
            if took:
                self.unpin(page_id)

    def prefetch(self, page_ids) -> int:
        """Warm the buffer pool with ``page_ids``; 0 on a bare device."""
        prefetch = getattr(self.device, "prefetch", None)
        if prefetch is None:
            return 0
        return prefetch(page_ids)

    # ------------------------------------------------------------------
    # crash points (no-ops on a plain device)
    # ------------------------------------------------------------------
    def crash_point(self, name: str) -> None:
        """A named point where a fault schedule may abort the operation.

        Engines sprinkle these through their update paths; on a plain
        :class:`BlockDevice` the call is free, under a
        :class:`~repro.iosim.faults.FaultyBlockDevice` with a matching
        schedule entry it raises ``SimulatedCrash`` mid-operation.
        """
        hook = getattr(self.device, "crash_point", None)
        if hook is not None:
            hook(name)
