"""Operation-scoped page access.

The paper counts one I/O per *node visit*.  Within a single logical operation
(one query, one insertion) a well-implemented algorithm keeps the handful of
blocks it is actively working on pinned in memory, so touching the same block
twice inside one operation costs one I/O, not two.  :class:`Pager` models
exactly that: inside a ``with pager.operation():`` scope, the first fetch of
each distinct page is charged to the device and later fetches are free;
writes to a page are likewise charged once per operation (flush-on-complete
semantics).

Outside an operation scope every fetch and write is charged — the
conservative default.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..telemetry import trace as _trace
from .disk import BlockDevice
from .page import Page


class _OperationScope:
    """Reusable ``with pager.operation():`` guard.

    A plain slotted class rather than ``@contextmanager``: the scope is
    entered once per logical operation on the hottest paths, and the
    generator machinery (one ``next`` per enter/exit plus a throwaway
    generator object) measurably taxes query throughput.  All state
    lives on the pager, so one shared instance serves nested scopes.
    """

    __slots__ = ("_pager",)

    def __init__(self, pager: "Pager"):
        self._pager = pager

    def __enter__(self) -> None:
        pager = self._pager
        pager._depth += 1
        if pager._depth == 1:
            pager._pinned = {}
            pager._dirty = set()

    def __exit__(self, exc_type, exc, tb) -> bool:
        pager = self._pager
        pager._depth -= 1
        if pager._depth == 0:
            pager._pinned = None
            pager._dirty = None
        return False


class _PinScope:
    """``with pager.pinning(pid):`` — holds one buffer-pool pin."""

    __slots__ = ("_pager", "_page_id", "_took")

    def __init__(self, pager: "Pager", page_id: int):
        self._pager = pager
        self._page_id = page_id
        self._took = False

    def __enter__(self) -> None:
        self._took = self._pager.pin(self._page_id)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._took:
            self._pager.unpin(self._page_id)
        return False


class Pager:
    """Charged access to a :class:`BlockDevice` with per-operation pinning."""

    def __init__(self, device: BlockDevice):
        self.device = device
        self._pinned: Optional[Dict[int, Page]] = None
        self._dirty: Optional[Set[int]] = None
        self._depth = 0
        self._op_scope = _OperationScope(self)

    # ------------------------------------------------------------------
    # operation scope
    # ------------------------------------------------------------------
    def operation(self) -> _OperationScope:
        """Scope one logical operation; nested scopes join the outermost."""
        return self._op_scope

    @property
    def in_operation(self) -> bool:
        return self._depth > 0

    # ------------------------------------------------------------------
    # charged access
    # ------------------------------------------------------------------
    def fetch(self, page_id: int) -> Page:
        """Read a page; within an operation, re-reads of a pinned page are free."""
        if self._pinned is not None:
            cached = self._pinned.get(page_id)
            if cached is not None:
                ctx = _trace._ACTIVE
                if ctx is not None:
                    ctx.record_pin()
                return cached
            page = self.device.read(page_id)
            self._pinned[page_id] = page
            return page
        return self.device.read(page_id)

    def write(self, page: Page) -> None:
        """Write a page; within an operation each page is flushed once."""
        # Any write invalidates the page's columnar cache — several
        # callers mutate ``page.items`` in place (B+-tree inserts, R-tree
        # entry updates) before flushing, so the cache can't be trusted
        # past this point.
        page.cols = None
        page.views = None
        if self._dirty is not None:
            if page.page_id in self._dirty:
                page.validate()
                # The charged flush already happened, but a fault-aware
                # device still needs its checksum refreshed to the final
                # content (pages are shared, mutated-in-place objects).
                note = getattr(self.device, "note_write", None)
                if note is not None:
                    note(page)
                return
            self._dirty.add(page.page_id)
            if self._pinned is not None:
                self._pinned[page.page_id] = page
        self.device.write(page)

    def alloc(self) -> Page:
        """Allocate a fresh page (free; it must still be written)."""
        page = self.device.alloc()
        if self._pinned is not None:
            self._pinned[page.page_id] = page
        return page

    def free(self, page_id: int) -> None:
        self.device.free(page_id)
        if self._pinned is not None:
            self._pinned.pop(page_id, None)
        if self._dirty is not None:
            self._dirty.discard(page_id)

    # ------------------------------------------------------------------
    # buffer-pool pinning (no-ops on a bare device)
    # ------------------------------------------------------------------
    def pin(self, page_id: int) -> bool:
        """Pin a page in the underlying buffer pool, if there is one.

        Returns ``True`` when a pool actually took the pin.  On a bare
        :class:`BlockDevice` this is a no-op — the Pager's own
        per-operation dedupe is the only "memory" the paper's model
        grants — so callers can pin unconditionally.
        """
        pin = getattr(self.device, "pin", None)
        if pin is None:
            return False
        pin(page_id)
        return True

    def unpin(self, page_id: int) -> None:
        unpin = getattr(self.device, "unpin", None)
        if unpin is not None:
            unpin(page_id)

    def pinning(self, page_id: int) -> _PinScope:
        """Hold a buffer-pool pin on ``page_id`` for the scope."""
        return _PinScope(self, page_id)

    def prefetch(self, page_ids) -> int:
        """Warm the buffer pool with ``page_ids``; 0 on a bare device."""
        prefetch = getattr(self.device, "prefetch", None)
        if prefetch is None:
            return 0
        return prefetch(page_ids)

    # ------------------------------------------------------------------
    # crash points (no-ops on a plain device)
    # ------------------------------------------------------------------
    def crash_point(self, name: str) -> None:
        """A named point where a fault schedule may abort the operation.

        Engines sprinkle these through their update paths; on a plain
        :class:`BlockDevice` the call is free, under a
        :class:`~repro.iosim.faults.FaultyBlockDevice` with a matching
        schedule entry it raises ``SimulatedCrash`` mid-operation.
        """
        hook = getattr(self.device, "crash_point", None)
        if hook is not None:
            hook(name)
