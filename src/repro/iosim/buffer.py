"""An optional LRU buffer pool with page pinning.

The paper's bounds assume no cache: every block touch is an I/O.  Real
systems keep an ``M``-page buffer pool, which mostly hides the top levels of
any tree.  :class:`LRUBufferPool` lets benchmarks quantify that effect (it is
*off* by default everywhere; engines take a :class:`Pager` and are agnostic
to whether a pool sits underneath).

Pinning.  Batched query execution (``query_batch``) holds the shared
root-side descent pages *pinned* while a batch drains, so the per-query
second-level searches — which can easily thrash an LRU of realistic size —
never evict the prefix every query in the batch is about to re-touch.
``pin``/``unpin`` are reference-counted; pinned pages are exempt from
eviction (the pool temporarily overflows its capacity rather than drop a
pinned page, mirroring how a real buffer manager treats fixed buffers).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable

from ..telemetry import trace as _trace
from .disk import BlockDevice
from .errors import PinnedPageError
from .page import Page


class LRUBufferPool:
    """A read cache of ``capacity`` pages over a :class:`BlockDevice`.

    The pool exposes the same ``read``/``write``/``alloc``/``free``/
    ``snapshot`` surface as :class:`BlockDevice`, so a :class:`Pager` can be
    constructed directly on top of it.

    Writes are write-through: the device is charged for every write (the
    paper's structures write only during construction and updates, and those
    bounds are about writes actually reaching disk).
    """

    def __init__(self, device: BlockDevice, capacity: int):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.device = device
        self.capacity = capacity
        self._lru: "OrderedDict[int, Page]" = OrderedDict()
        self._pins: Dict[int, int] = {}  # page_id -> reference count
        self.hits = 0
        self.misses = 0

    @property
    def block_capacity(self) -> int:
        return self.device.block_capacity

    def tagged(self, tag: str):
        return self.device.tagged(tag)

    def read(self, page_id: int) -> Page:
        cached = self._lru.get(page_id)
        if cached is not None:
            self._lru.move_to_end(page_id)
            self.hits += 1
            ctx = _trace._ACTIVE
            if ctx is not None:
                ctx.record_hit()
            note = getattr(self.device, "journal_note_read", None)
            if note is not None:
                note(cached)
            return cached
        page = self.device.read(page_id)
        self.misses += 1
        ctx = _trace._ACTIVE
        if ctx is not None:
            ctx.record_miss()
        self._cache(page)
        return page

    def write(self, page: Page) -> None:
        self.device.write(page)
        self._cache(page)

    def alloc(self) -> Page:
        return self.device.alloc()

    def free(self, page_id: int) -> None:
        pins = self._pins.get(page_id)
        if pins:
            # Dropping the pin here would turn a live reference into a
            # use-after-free; refuse loudly instead.
            raise PinnedPageError(page_id, pins)
        self._lru.pop(page_id, None)
        self.device.free(page_id)

    def note_write(self, page: Page) -> None:
        """Forward a Pager-deduplicated write to a fault-aware device."""
        note = getattr(self.device, "note_write", None)
        if note is not None:
            note(page)

    def crash_point(self, name: str) -> None:
        """Forward an engine crash point to a fault-aware device."""
        hook = getattr(self.device, "crash_point", None)
        if hook is not None:
            hook(name)

    def snapshot(self):
        return self.device.snapshot()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (cache contents and pins persist)."""
        self.device.reset_counters()
        self.hits = 0
        self.misses = 0

    def drop_cache(self) -> None:
        """Evict every unpinned page, returning the pool to a cold state.

        Pinned pages cannot be dropped (their holders still reference
        them); a pool with outstanding pins raises
        :class:`~repro.iosim.errors.PinnedPageError` instead of silently
        keeping a warm subset.
        """
        if self._pins:
            pid = next(iter(self._pins))
            raise PinnedPageError(pid, self._pins[pid])
        self._lru.clear()

    @property
    def hit_rate(self) -> float:
        touched = self.hits + self.misses
        return self.hits / touched if touched else 0.0

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, page_id: int) -> Page:
        """Make a page resident and exempt from eviction until unpinned.

        An uncached page is read first (charged as a miss).  Pins are
        reference-counted, so nested pins of the same page are safe.
        The pin is registered *before* the read so the page cannot be the
        eviction victim of its own caching when the pool is full of pins.
        """
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        try:
            return self.read(page_id)
        except Exception:
            self.unpin(page_id)
            raise

    def unpin(self, page_id: int) -> None:
        """Release one pin; the page becomes evictable at refcount zero."""
        count = self._pins.get(page_id)
        if count is None:
            raise KeyError(f"page {page_id} is not pinned")
        if count <= 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1
        self._evict_overflow()

    @property
    def pinned_count(self) -> int:
        """Number of distinct pages currently pinned."""
        return len(self._pins)

    def is_pinned(self, page_id: int) -> bool:
        return page_id in self._pins

    # ------------------------------------------------------------------
    # prefetch
    # ------------------------------------------------------------------
    def prefetch(self, page_ids: Iterable[int]) -> int:
        """Warm the cache with the given pages; returns how many were
        actually fetched from the device.

        Already-cached pages are only freshened in LRU order (no hit is
        recorded — prefetching its own cache would inflate the hit rate).
        """
        fetched = 0
        for page_id in page_ids:
            if page_id in self._lru:
                self._lru.move_to_end(page_id)
                continue
            page = self.device.read(page_id)
            self.misses += 1
            ctx = _trace._ACTIVE
            if ctx is not None:
                ctx.record_miss()
            self._cache(page)
            fetched += 1
        return fetched

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cache(self, page: Page) -> None:
        self._lru[page.page_id] = page
        self._lru.move_to_end(page.page_id)
        self._evict_overflow()

    def _evict_overflow(self) -> None:
        if len(self._lru) <= self.capacity:
            return
        # Evict in LRU order, skipping pinned pages.  When everything is
        # pinned the pool overflows rather than drop a fixed buffer.
        for page_id in list(self._lru):
            if page_id in self._pins:
                continue
            del self._lru[page_id]
            if len(self._lru) <= self.capacity:
                return
