"""An optional LRU buffer pool.

The paper's bounds assume no cache: every block touch is an I/O.  Real
systems keep an ``M``-page buffer pool, which mostly hides the top levels of
any tree.  :class:`LRUBufferPool` lets benchmarks quantify that effect (it is
*off* by default everywhere; engines take a :class:`Pager` and are agnostic
to whether a pool sits underneath).
"""

from __future__ import annotations

from collections import OrderedDict

from ..telemetry import trace as _trace
from .disk import BlockDevice
from .page import Page


class LRUBufferPool:
    """A read cache of ``capacity`` pages over a :class:`BlockDevice`.

    The pool exposes the same ``read``/``write``/``alloc``/``free``/
    ``snapshot`` surface as :class:`BlockDevice`, so a :class:`Pager` can be
    constructed directly on top of it.

    Writes are write-through: the device is charged for every write (the
    paper's structures write only during construction and updates, and those
    bounds are about writes actually reaching disk).
    """

    def __init__(self, device: BlockDevice, capacity: int):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.device = device
        self.capacity = capacity
        self._lru: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def block_capacity(self) -> int:
        return self.device.block_capacity

    def tagged(self, tag: str):
        return self.device.tagged(tag)

    def read(self, page_id: int) -> Page:
        cached = self._lru.get(page_id)
        if cached is not None:
            self._lru.move_to_end(page_id)
            self.hits += 1
            ctx = _trace._ACTIVE
            if ctx is not None:
                ctx.record_hit()
            return cached
        page = self.device.read(page_id)
        self.misses += 1
        ctx = _trace._ACTIVE
        if ctx is not None:
            ctx.record_miss()
        self._cache(page)
        return page

    def write(self, page: Page) -> None:
        self.device.write(page)
        self._cache(page)

    def alloc(self) -> Page:
        return self.device.alloc()

    def free(self, page_id: int) -> None:
        self._lru.pop(page_id, None)
        self.device.free(page_id)

    def snapshot(self):
        return self.device.snapshot()

    def reset_counters(self) -> None:
        self.device.reset_counters()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        touched = self.hits + self.misses
        return self.hits / touched if touched else 0.0

    def _cache(self, page: Page) -> None:
        self._lru[page.page_id] = page
        self._lru.move_to_end(page.page_id)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
