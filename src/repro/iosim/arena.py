"""Flat page arenas: a whole page store as one contiguous byte region.

The PR 5 snapshot pickles every page into a single object graph, which
makes *opening* a snapshot an O(n) deserialization — fine for one
process, fatal for a worker pool where every process pays it again (the
E17 serving cliff).  The arena format applies the external-memory
discipline of the related DAM-structure work (Iacono–Karsin–Koumoutsos)
to the transfer path itself: the layout on the wire *is* the layout in
memory.  All pages are serialized into one contiguous region fronted by
a fixed-width offset/length/fingerprint table, so a consumer can

* attach in O(1) — parse a 40-byte header and slice a table, no
  per-page work;
* decode any single page independently — each page is its own pickle,
  addressed by ``(offset, length)`` and verified against the same
  :func:`~repro.iosim.faults.page_fingerprint` the fault layer keeps at
  rest;
* share the region across processes — the arena is plain bytes, so one
  copy in :mod:`multiprocessing.shared_memory` serves any number of
  workers through zero-copy ``memoryview`` slices.

Layout (all integers big-endian, offsets relative to arena start)::

    offset  size  field
    0       8     magic  b"RPRARENA"
    8       4     arena version (currently 1)
    12      4     block capacity (the paper's B)
    16      8     allocator cursor (next page id)
    24      8     page count P
    32      8     meta length M
    40      M     pickled metadata dict
    40+M    28*P  page table, ascending page id:
                    id (8) | offset (8) | length (8) | fingerprint (4)
    ...           page blobs: pickle of (items, header) per page

Every malformed-input path raises a typed
:class:`~repro.iosim.errors.SnapshotFormatError` — truncation, a table
entry pointing past the payload, a fingerprint mismatch — never a bare
``struct`` or ``pickle`` error.

:class:`ArenaBlockDevice` is the lazy consumer: a
:class:`~repro.iosim.disk.BlockDevice` whose pages materialize from the
arena on first read, held in a bounded decoded-page LRU so a warm
worker's repeated batches hit live objects while cold pages cost one
decode each.  Pages mutated after decode (writes, allocations) are
pinned resident — the arena is immutable, so evicting a dirty page
would silently lose the write.
"""

from __future__ import annotations

import io
import pickle
import struct
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

from .disk import BlockDevice
from .errors import SnapshotFormatError
from .faults import page_fingerprint
from .page import Page

ARENA_MAGIC = b"RPRARENA"
ARENA_VERSION = 1

#: magic, version, block capacity, next page id, page count, meta length
_ARENA_HEADER = struct.Struct(">8sIIQQQ")
#: page id, offset, length, fingerprint
_TABLE_ENTRY = struct.Struct(">QQQI")


# ----------------------------------------------------------------------
# restricted unpickling (shared with the snapshot container)
# ----------------------------------------------------------------------
#: Modules arena/snapshot payloads may resolve globals from.  Payloads
#: only ever contain this library's value types plus stdlib scalars, so
#: anything else in a stream is treated as damage, not data —
#: ``pickle.loads`` on a hostile buffer is an RCE otherwise.
ALLOWED_MODULE_PREFIXES = ("repro.", "fractions", "builtins", "collections")


class RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        if module.split(".")[0] + "." in ALLOWED_MODULE_PREFIXES or module in (
            "fractions", "builtins", "collections",
        ):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"payload references forbidden global {module}.{name}"
        )


def restricted_loads(payload: Union[bytes, memoryview], buffers=None):
    """Unpickle with the module allowlist (out-of-band buffers allowed)."""
    return RestrictedUnpickler(io.BytesIO(payload), buffers=buffers).load()


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_page(page: Page) -> bytes:
    """One page's independent blob: ``pickle((items, header))``."""
    return pickle.dumps((page.items, page.header),
                        protocol=pickle.HIGHEST_PROTOCOL)


def build_arena(device: BlockDevice, meta: Dict[str, Any]) -> bytes:
    """Serialize ``device``'s live pages plus ``meta`` into one arena.

    Pages are laid out in ascending id order; the table is fixed-width so
    a reader can binary-search it without decoding anything.  Unlike the
    v1 object-graph pickle, each page is encoded independently: items
    shared *between* pages are duplicated on decode (identity within a
    page is preserved).  Content equality — and therefore results and
    per-query I/O — is unaffected.
    """
    pages = sorted(device.iter_pages(), key=lambda p: p.page_id)
    meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    blobs = [encode_page(p) for p in pages]
    table_size = _TABLE_ENTRY.size * len(pages)
    data_start = _ARENA_HEADER.size + len(meta_blob) + table_size
    out = bytearray()
    out += _ARENA_HEADER.pack(ARENA_MAGIC, ARENA_VERSION,
                              device.block_capacity, device._next_id,
                              len(pages), len(meta_blob))
    out += meta_blob
    offset = data_start
    for page, blob in zip(pages, blobs):
        out += _TABLE_ENTRY.pack(page.page_id, offset, len(blob),
                                 page_fingerprint(page))
        offset += len(blob)
    for blob in blobs:
        out += blob
    return bytes(out)


# ----------------------------------------------------------------------
# zero-copy view
# ----------------------------------------------------------------------
class ArenaView:
    """A parsed arena over a buffer the caller owns (bytes or memoryview).

    Construction is O(1) in the number of pages: it validates the header
    and the table *bounds*, never touching a page blob.  Page content is
    decoded on demand by :meth:`decode_page`, which verifies the entry's
    fingerprint — so even a lazy consumer never trusts a damaged page.

    When the buffer is a ``memoryview`` over shared memory, slicing is
    zero-copy; call :meth:`release` before closing the segment (exported
    views keep a POSIX shm mapping alive).
    """

    __slots__ = ("source", "_buf", "block_capacity", "next_id",
                 "page_count", "_meta_blob", "_table", "_entries", "_meta")

    def __init__(self, buf: Union[bytes, memoryview], source: str = "<arena>"):
        self.source = source
        self._buf = memoryview(buf)
        n = len(self._buf)
        if n < _ARENA_HEADER.size:
            raise SnapshotFormatError(
                source, f"arena truncated: {n} bytes is shorter than the "
                        f"{_ARENA_HEADER.size}-byte header")
        magic, version, capacity, next_id, count, meta_len = (
            _ARENA_HEADER.unpack_from(self._buf, 0))
        if magic != ARENA_MAGIC:
            raise SnapshotFormatError(
                source, f"bad arena magic {bytes(magic)!r}")
        if version != ARENA_VERSION:
            raise SnapshotFormatError(
                source, f"unsupported arena version {version} "
                        f"(this build reads version {ARENA_VERSION})")
        table_start = _ARENA_HEADER.size + meta_len
        data_start = table_start + _TABLE_ENTRY.size * count
        if data_start > n:
            raise SnapshotFormatError(
                source, f"arena truncated: header promises {count} table "
                        f"entries and {meta_len} meta bytes but only "
                        f"{n} bytes exist")
        self.block_capacity = capacity
        self.next_id = next_id
        self.page_count = count
        self._meta_blob = self._buf[_ARENA_HEADER.size:table_start]
        self._table = self._buf[table_start:data_start]
        # {page_id: (offset, length, fingerprint)} — bounds-checked once
        # here so decode_page never has to re-validate.
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        for i in range(count):
            pid, offset, length, crc = _TABLE_ENTRY.unpack_from(
                self._table, i * _TABLE_ENTRY.size)
            if offset < data_start or offset + length > n:
                raise SnapshotFormatError(
                    source, f"page {pid}: table entry points past the "
                            f"payload (offset {offset}, length {length}, "
                            f"arena {n} bytes)")
            if pid in self._entries:
                raise SnapshotFormatError(
                    source, f"page {pid}: duplicate table entry")
            self._entries[pid] = (offset, length, crc)
        self._meta: Optional[Dict[str, Any]] = None

    @property
    def meta(self) -> Dict[str, Any]:
        """The engine metadata dict (decoded once, cached)."""
        if self._meta is None:
            try:
                self._meta = restricted_loads(self._meta_blob)
            except Exception as exc:
                raise SnapshotFormatError(
                    self.source, f"undecodable arena metadata: {exc}"
                ) from exc
            if not isinstance(self._meta, dict):
                raise SnapshotFormatError(
                    self.source,
                    f"arena metadata is {type(self._meta).__name__}, "
                    f"not a dict")
        return self._meta

    @property
    def page_ids(self) -> List[int]:
        return sorted(self._entries)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries

    def decode_page(self, page_id: int) -> Page:
        """Decode one page, verifying its table fingerprint.

        Raises :class:`SnapshotFormatError` on an unknown id, an
        undecodable blob, or content that no longer matches the
        fingerprint recorded at build time.
        """
        try:
            offset, length, expected = self._entries[page_id]
        except KeyError:
            raise SnapshotFormatError(
                self.source, f"page {page_id}: not in the arena table"
            ) from None
        try:
            items, header = restricted_loads(self._buf[offset:offset + length])
        except SnapshotFormatError:
            raise
        except Exception as exc:
            raise SnapshotFormatError(
                self.source, f"page {page_id}: undecodable blob: {exc}"
            ) from exc
        page = Page(page_id, self.block_capacity)
        page.items = items
        page.header = header
        if page_fingerprint(page) != expected:
            raise SnapshotFormatError(
                self.source, f"page {page_id}: checksum mismatch")
        return page

    def materialize(self) -> BlockDevice:
        """Eagerly decode every page into a fresh :class:`BlockDevice`.

        This is the compatibility path (``load_device`` on a v2
        snapshot): same result as the v1 loader, every fingerprint
        verified up front.
        """
        device = BlockDevice(self.block_capacity)
        for page_id in self.page_ids:
            device._pages[page_id] = self.decode_page(page_id)
        device._next_id = max(self.next_id,
                              max(device._pages, default=-1) + 1)
        return device

    def release(self) -> None:
        """Drop every exported buffer slice (required before shm close)."""
        self._meta_blob.release()
        self._table.release()
        self._buf.release()


# ----------------------------------------------------------------------
# lazy device
# ----------------------------------------------------------------------
class ArenaBlockDevice(BlockDevice):
    """A block device decoding pages lazily out of an :class:`ArenaView`.

    The warm-worker serving device: attach is O(1), and each page is
    decoded from its arena slice on first read, then kept in a decoded-
    page LRU of ``cache_pages`` entries (``None`` = unbounded) so
    repeated batches against the same shard hit warm Python objects.
    Clean pages can always be re-decoded, so eviction is safe; pages
    that were written to (or freshly allocated) are pinned resident.

    I/O accounting is inherited unchanged from :class:`BlockDevice` —
    a lazily-decoded read charges exactly one read, like any other, so
    per-query I/O counts match an eagerly restored device exactly.
    """

    def __init__(self, view: ArenaView,
                 cache_pages: Optional[int] = None):
        if cache_pages is not None and cache_pages < 1:
            raise ValueError("cache_pages must be >= 1 (or None)")
        super().__init__(view.block_capacity)
        self._view = view
        self._next_id = view.next_id
        self._cache_pages = cache_pages
        #: ids present in the arena and not currently materialized
        self._lazy: Set[int] = set(view._entries)
        #: clean decoded ids in recency order (eviction candidates)
        self._clean_lru: "OrderedDict[int, None]" = OrderedDict()
        #: ids whose in-memory page diverged from the arena (never evict)
        self._dirty: Set[int] = set()
        self.decodes = 0   # arena blob decodes (cold + re-decode)
        self.evictions = 0

    # -- materialization ------------------------------------------------
    def _materialize(self, page_id: int) -> Page:
        page = self._view.decode_page(page_id)
        self.decodes += 1
        self._pages[page_id] = page
        self._lazy.discard(page_id)
        self._clean_lru[page_id] = None
        self._evict_over_budget()
        return page

    def _evict_over_budget(self) -> None:
        if self._cache_pages is None:
            return
        while len(self._clean_lru) > self._cache_pages:
            victim, _ = self._clean_lru.popitem(last=False)
            del self._pages[victim]
            self._lazy.add(victim)
            self.evictions += 1

    def _touch(self, page_id: int) -> None:
        if page_id in self._clean_lru:
            self._clean_lru.move_to_end(page_id)

    # -- BlockDevice surface --------------------------------------------
    def read(self, page_id: int) -> Page:
        if page_id not in self._pages and page_id in self._lazy:
            self._materialize(page_id)
        self._touch(page_id)
        return super().read(page_id)

    def write(self, page: Page) -> None:
        super().write(page)
        self._dirty.add(page.page_id)
        self._clean_lru.pop(page.page_id, None)

    def alloc(self) -> Page:
        page = super().alloc()
        self._dirty.add(page.page_id)
        return page

    def free(self, page_id: int) -> None:
        if page_id not in self._pages and page_id in self._lazy:
            # Freeing a page nobody ever decoded: no reason to decode it
            # just to throw it away.
            self._lazy.discard(page_id)
            self.frees += 1
            return
        super().free(page_id)
        self._clean_lru.pop(page_id, None)
        self._dirty.discard(page_id)

    @property
    def pages_in_use(self) -> int:
        return len(self._pages) + len(self._lazy)

    def iter_pages(self) -> Iterator[Page]:
        """Iterate live pages (decoding lazy ones without caching them)."""
        for page in list(self._pages.values()):
            yield page
        for page_id in sorted(self._lazy):
            yield self._view.decode_page(page_id)

    @property
    def resident_pages(self) -> int:
        """Pages currently decoded (the LRU working set + dirty pins)."""
        return len(self._pages)
