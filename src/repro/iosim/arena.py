"""Flat page arenas: a whole page store as one contiguous byte region.

The PR 5 snapshot pickles every page into a single object graph, which
makes *opening* a snapshot an O(n) deserialization — fine for one
process, fatal for a worker pool where every process pays it again (the
E17 serving cliff).  The arena format applies the external-memory
discipline of the related DAM-structure work (Iacono–Karsin–Koumoutsos)
to the transfer path itself: the layout on the wire *is* the layout in
memory.  All pages are serialized into one contiguous region fronted by
a fixed-width offset/length/fingerprint table, so a consumer can

* attach in O(1) — parse a 40-byte header and slice a table, no
  per-page work;
* decode any single page independently — each page is its own pickle,
  addressed by ``(offset, length)`` and verified against the same
  :func:`~repro.iosim.faults.page_fingerprint` the fault layer keeps at
  rest;
* share the region across processes — the arena is plain bytes, so one
  copy in :mod:`multiprocessing.shared_memory` serves any number of
  workers through zero-copy ``memoryview`` slices.

Layout (all integers big-endian, offsets relative to arena start)::

    offset  size  field
    0       8     magic  b"RPRARENA"
    8       4     arena version (currently 2; 1 still reads)
    12      4     block capacity (the paper's B)
    16      8     allocator cursor (next page id)
    24      8     page count P
    32      8     meta length M
    40      M     pickled metadata dict
    40+M    28*P  page table, ascending page id:
                    id (8) | offset (8) | length (8) | fingerprint (4)
    ...           page blobs (8-aligned in version 2)

A version-1 page blob is ``pickle((items, header))`` and nothing else.
A version-2 blob prefixes that pickle with a *columnar sidecar* so a
shm worker can attach the page's scan columns (see
:mod:`repro.geometry.kernels`) zero-copy, without rebuilding them from
the decoded Python objects::

    offset  size       field
    0       16         sidecar header: kind (1) | reserved (1) |
                       rows (2) | ncols (4) | pickle length (8)
    16      8*R*C      float64 column matrix, row-major, little-endian
    16+F    R..2R      per-row flag bytes (valid; + vertical for kind 1)
    ...                pickle of (items, header)

``kind`` is 0 (no sidecar: rows and ncols are then 0), 1 (plane
segments: the 8 ``segment_fp`` columns + valid/vertical flags), 2
(line-based PST rows: the 6 ``lb_fp`` columns + valid) or 3 (G-tree
key rows: 8 endpoint-ball columns + valid).  The table fingerprint
still covers the decoded ``(items, header)`` content only — the
sidecar is derived data, and a decoder is always free to ignore it.

Every malformed-input path raises a typed
:class:`~repro.iosim.errors.SnapshotFormatError` — truncation, a table
entry pointing past the payload, a fingerprint mismatch — never a bare
``struct`` or ``pickle`` error.

:class:`ArenaBlockDevice` is the lazy consumer: a
:class:`~repro.iosim.disk.BlockDevice` whose pages materialize from the
arena on first read, held in a bounded decoded-page LRU so a warm
worker's repeated batches hit live objects while cold pages cost one
decode each.  Pages mutated after decode (writes, allocations) are
pinned resident — the arena is immutable, so evicting a dirty page
would silently lose the write.
"""

from __future__ import annotations

import io
import pickle
import struct
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

from .disk import BlockDevice
from .errors import SnapshotFormatError
from .faults import page_fingerprint
from .page import Page

ARENA_MAGIC = b"RPRARENA"
ARENA_VERSION = 2
#: versions this build can read (writes are always ARENA_VERSION)
SUPPORTED_ARENA_VERSIONS = (1, 2)

#: magic, version, block capacity, next page id, page count, meta length
_ARENA_HEADER = struct.Struct(">8sIIQQQ")
#: page id, offset, length, fingerprint
_TABLE_ENTRY = struct.Struct(">QQQI")
#: v2 per-blob sidecar header: kind, reserved, rows, ncols, pickle length
_BLOB_HEADER = struct.Struct(">BBHIQ")

#: sidecar kinds (see the module docstring)
KIND_NONE, KIND_SEG, KIND_LB, KIND_GKEY = 0, 1, 2, 3
#: kind -> (page-cache tag, float columns, flag columns)
_KIND_SPECS = {
    KIND_SEG: ("seg", 8, 2),     # valid + vertical
    KIND_LB: ("lb", 6, 1),       # valid
    KIND_GKEY: ("gkey", 8, 1),   # valid
}


# ----------------------------------------------------------------------
# restricted unpickling (shared with the snapshot container)
# ----------------------------------------------------------------------
#: Modules arena/snapshot payloads may resolve globals from.  Payloads
#: only ever contain this library's value types plus stdlib scalars, so
#: anything else in a stream is treated as damage, not data —
#: ``pickle.loads`` on a hostile buffer is an RCE otherwise.
ALLOWED_MODULE_PREFIXES = ("repro.", "fractions", "builtins", "collections")


class RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        if module.split(".")[0] + "." in ALLOWED_MODULE_PREFIXES or module in (
            "fractions", "builtins", "collections",
        ):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"payload references forbidden global {module}.{name}"
        )


def restricted_loads(payload: Union[bytes, memoryview], buffers=None):
    """Unpickle with the module allowlist (out-of-band buffers allowed)."""
    return RestrictedUnpickler(io.BytesIO(payload), buffers=buffers).load()


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _sidecar_columns(page: Page):
    """``(kind, columns)`` for a page whose payload has a columnar mirror.

    Kind detection happens at *encode* time by item type, so the arena
    builder needs no cooperation from the engines.  Imports are lazy:
    ``iosim`` must not import ``core`` at module level (``gtree`` imports
    from ``iosim``).
    """
    from ..geometry import kernels

    items = page.items
    if (not kernels.HAVE_NUMPY or len(items) < kernels.SIDECAR_MIN_ROWS
            or len(items) > 0xFFFF):
        return KIND_NONE, None
    from ..geometry.linebased import LineBasedSegment
    from ..geometry.segment import Segment

    first = items[0]
    try:
        if isinstance(first, Segment):
            if all(isinstance(s, Segment) for s in items):
                return KIND_SEG, kernels.segment_columns(page, items)
        elif isinstance(first, LineBasedSegment):
            if all(isinstance(s, LineBasedSegment) for s in items):
                return KIND_LB, kernels.lb_columns(page, items)
        elif (isinstance(first, tuple) and len(first) == 2
              and isinstance(first[0], tuple) and len(first[0]) == 5):
            from ..core.solution2.gtree import GEntry

            if all(isinstance(e, tuple) and len(e) == 2
                   and isinstance(e[1], GEntry) for e in items):
                return KIND_GKEY, kernels.gkey_columns(page, items)
    except Exception:
        # A sidecar is an optimization, never a correctness requirement:
        # any build hiccup just means this page ships without one.
        return KIND_NONE, None
    return KIND_NONE, None


def encode_page(page: Page) -> bytes:
    """One page's independent v2 blob: sidecar header [+ columns] + pickle."""
    payload = pickle.dumps((page.items, page.header),
                           protocol=pickle.HIGHEST_PROTOCOL)
    kind, cols = _sidecar_columns(page)
    if kind == KIND_NONE:
        return _BLOB_HEADER.pack(KIND_NONE, 0, 0, 0, len(payload)) + payload
    import numpy as np

    _tag, ncols, nflags = _KIND_SPECS[kind]
    mat = np.ascontiguousarray(cols.fp_matrix(), dtype="<f8")
    flags = [np.ascontiguousarray(cols.valid, dtype=np.bool_)]
    if kind == KIND_SEG:
        flags.append(np.ascontiguousarray(cols.vertical, dtype=np.bool_))
    assert len(flags) == nflags and mat.shape == (cols.n, ncols)
    out = bytearray()
    out += _BLOB_HEADER.pack(kind, 0, cols.n, ncols, len(payload))
    out += mat.tobytes()
    for flag in flags:
        out += flag.tobytes()
    out += payload
    return bytes(out)


def build_arena(device: BlockDevice, meta: Dict[str, Any]) -> bytes:
    """Serialize ``device``'s live pages plus ``meta`` into one arena.

    Pages are laid out in ascending id order; the table is fixed-width so
    a reader can binary-search it without decoding anything.  Unlike the
    v1 object-graph pickle, each page is encoded independently: items
    shared *between* pages are duplicated on decode (identity within a
    page is preserved).  Content equality — and therefore results and
    per-query I/O — is unaffected.
    """
    pages = sorted(device.iter_pages(), key=lambda p: p.page_id)
    meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    blobs = [encode_page(p) for p in pages]
    table_size = _TABLE_ENTRY.size * len(pages)
    data_start = _ARENA_HEADER.size + len(meta_blob) + table_size
    out = bytearray()
    out += _ARENA_HEADER.pack(ARENA_MAGIC, ARENA_VERSION,
                              device.block_capacity, device._next_id,
                              len(pages), len(meta_blob))
    out += meta_blob
    # Each blob starts 8-aligned so a sidecar's float64 matrix (16 bytes
    # into the blob) can be attached as an aligned zero-copy array.
    offset = data_start
    pads = []
    for page, blob in zip(pages, blobs):
        pad = (-offset) % 8
        offset += pad
        pads.append(pad)
        out += _TABLE_ENTRY.pack(page.page_id, offset, len(blob),
                                 page_fingerprint(page))
        offset += len(blob)
    for pad, blob in zip(pads, blobs):
        out += b"\x00" * pad
        out += blob
    return bytes(out)


# ----------------------------------------------------------------------
# zero-copy view
# ----------------------------------------------------------------------
class ArenaView:
    """A parsed arena over a buffer the caller owns (bytes or memoryview).

    Construction is O(1) in the number of pages: it validates the header
    and the table *bounds*, never touching a page blob.  Page content is
    decoded on demand by :meth:`decode_page`, which verifies the entry's
    fingerprint — so even a lazy consumer never trusts a damaged page.

    When the buffer is a ``memoryview`` over shared memory, slicing is
    zero-copy; call :meth:`release` before closing the segment (exported
    views keep a POSIX shm mapping alive).
    """

    __slots__ = ("source", "_buf", "version", "block_capacity", "next_id",
                 "page_count", "_meta_blob", "_table", "_entries", "_meta")

    def __init__(self, buf: Union[bytes, memoryview], source: str = "<arena>"):
        self.source = source
        self._buf = memoryview(buf)
        n = len(self._buf)
        if n < _ARENA_HEADER.size:
            raise SnapshotFormatError(
                source, f"arena truncated: {n} bytes is shorter than the "
                        f"{_ARENA_HEADER.size}-byte header")
        magic, version, capacity, next_id, count, meta_len = (
            _ARENA_HEADER.unpack_from(self._buf, 0))
        if magic != ARENA_MAGIC:
            raise SnapshotFormatError(
                source, f"bad arena magic {bytes(magic)!r}")
        if version not in SUPPORTED_ARENA_VERSIONS:
            raise SnapshotFormatError(
                source, f"unsupported arena version {version} (this build "
                        f"reads versions "
                        f"{', '.join(map(str, SUPPORTED_ARENA_VERSIONS))})")
        self.version = version
        table_start = _ARENA_HEADER.size + meta_len
        data_start = table_start + _TABLE_ENTRY.size * count
        if data_start > n:
            raise SnapshotFormatError(
                source, f"arena truncated: header promises {count} table "
                        f"entries and {meta_len} meta bytes but only "
                        f"{n} bytes exist")
        self.block_capacity = capacity
        self.next_id = next_id
        self.page_count = count
        self._meta_blob = self._buf[_ARENA_HEADER.size:table_start]
        self._table = self._buf[table_start:data_start]
        # {page_id: (offset, length, fingerprint)} — bounds-checked once
        # here so decode_page never has to re-validate.
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        for i in range(count):
            pid, offset, length, crc = _TABLE_ENTRY.unpack_from(
                self._table, i * _TABLE_ENTRY.size)
            if offset < data_start or offset + length > n:
                raise SnapshotFormatError(
                    source, f"page {pid}: table entry points past the "
                            f"payload (offset {offset}, length {length}, "
                            f"arena {n} bytes)")
            if pid in self._entries:
                raise SnapshotFormatError(
                    source, f"page {pid}: duplicate table entry")
            self._entries[pid] = (offset, length, crc)
        self._meta: Optional[Dict[str, Any]] = None

    @property
    def meta(self) -> Dict[str, Any]:
        """The engine metadata dict (decoded once, cached)."""
        if self._meta is None:
            try:
                self._meta = restricted_loads(self._meta_blob)
            except Exception as exc:
                raise SnapshotFormatError(
                    self.source, f"undecodable arena metadata: {exc}"
                ) from exc
            if not isinstance(self._meta, dict):
                raise SnapshotFormatError(
                    self.source,
                    f"arena metadata is {type(self._meta).__name__}, "
                    f"not a dict")
        return self._meta

    @property
    def page_ids(self) -> List[int]:
        return sorted(self._entries)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries

    def decode_page(self, page_id: int) -> Page:
        """Decode one page, verifying its table fingerprint.

        Raises :class:`SnapshotFormatError` on an unknown id, an
        undecodable blob, or content that no longer matches the
        fingerprint recorded at build time.
        """
        try:
            offset, length, expected = self._entries[page_id]
        except KeyError:
            raise SnapshotFormatError(
                self.source, f"page {page_id}: not in the arena table"
            ) from None
        sidecar = None
        if self.version == 1:
            pickle_view = self._buf[offset:offset + length]
        else:
            pickle_view, sidecar = self._parse_sidecar(page_id, offset, length)
        try:
            items, header = restricted_loads(pickle_view)
        except SnapshotFormatError:
            raise
        except Exception as exc:
            raise SnapshotFormatError(
                self.source, f"page {page_id}: undecodable blob: {exc}"
            ) from exc
        page = Page(page_id, self.block_capacity)
        page.items = items
        page.header = header
        if page_fingerprint(page) != expected:
            raise SnapshotFormatError(
                self.source, f"page {page_id}: checksum mismatch")
        if sidecar is not None:
            self._attach_columns(page, sidecar)
        return page

    def _parse_sidecar(self, page_id: int, offset: int, length: int):
        """Split a v2 blob into its pickle view and (optional) sidecar.

        The sidecar header is parsed and bounds-checked *before* anything
        is unpickled, so a damaged or hostile blob dies here with an
        "undecodable blob" error and never reaches the unpickler.
        """

        def bad(reason: str) -> SnapshotFormatError:
            return SnapshotFormatError(
                self.source, f"page {page_id}: undecodable blob: {reason}")

        if length < _BLOB_HEADER.size:
            raise bad(f"{length} bytes is shorter than the "
                      f"{_BLOB_HEADER.size}-byte sidecar header")
        kind, _reserved, rows, ncols, pickle_len = _BLOB_HEADER.unpack_from(
            self._buf, offset)
        if kind == KIND_NONE:
            if rows or ncols:
                raise bad(f"sidecar kind 0 with rows={rows} ncols={ncols}")
            mat_bytes = flag_bytes = 0
        elif kind in _KIND_SPECS:
            want_ncols, nflags = _KIND_SPECS[kind][1:]
            if ncols != want_ncols:
                raise bad(f"sidecar kind {kind} with {ncols} columns "
                          f"(expected {want_ncols})")
            mat_bytes = 8 * rows * ncols
            flag_bytes = nflags * rows
        else:
            raise bad(f"unknown sidecar kind {kind}")
        pickle_start = offset + _BLOB_HEADER.size + mat_bytes + flag_bytes
        if pickle_start + pickle_len != offset + length:
            raise bad(f"sidecar geometry (rows={rows}, ncols={ncols}, "
                      f"pickle {pickle_len} bytes) does not add up to the "
                      f"{length}-byte blob")
        pickle_view = self._buf[pickle_start:pickle_start + pickle_len]
        if kind == KIND_NONE:
            return pickle_view, None
        return pickle_view, (kind, rows, ncols, offset + _BLOB_HEADER.size)

    def _attach_columns(self, page: Page, sidecar) -> None:
        """Mirror the sidecar into ``page.cols`` as zero-copy views.

        Purely best-effort: without numpy, or if the decoded payload does
        not line up with the recorded row count, the page simply starts
        with a cold column cache (rebuilt lazily by the kernels).
        """
        from ..geometry import kernels

        if not kernels.HAVE_NUMPY:
            return
        kind, rows, ncols, mat_off = sidecar
        if rows != len(page.items):
            return
        import numpy as np

        mat = np.frombuffer(self._buf, dtype="<f8", count=rows * ncols,
                            offset=mat_off).reshape(rows, ncols)
        flags_off = mat_off + 8 * rows * ncols
        valid = np.frombuffer(self._buf, dtype=np.bool_, count=rows,
                              offset=flags_off)
        tag = _KIND_SPECS[kind][0]
        if kind == KIND_SEG:
            vertical = np.frombuffer(self._buf, dtype=np.bool_, count=rows,
                                     offset=flags_off + rows)
            cols = kernels.SegColumns.from_arrays(mat, valid, vertical)
        elif kind == KIND_LB:
            cols = kernels.LBColumns.from_arrays(mat, valid)
        else:
            cols = kernels.GKeyColumns.from_arrays(mat, valid)
        page.cols = (tag, cols)

    def materialize(self) -> BlockDevice:
        """Eagerly decode every page into a fresh :class:`BlockDevice`.

        This is the compatibility path (``load_device`` on a v2
        snapshot): same result as the v1 loader, every fingerprint
        verified up front.
        """
        device = BlockDevice(self.block_capacity)
        for page_id in self.page_ids:
            device._pages[page_id] = self.decode_page(page_id)
        device._next_id = max(self.next_id,
                              max(device._pages, default=-1) + 1)
        return device

    def release(self) -> None:
        """Drop every exported buffer slice (required before shm close).

        Pages decoded from a v2 arena hold zero-copy numpy views over the
        buffer; while any such page is alive the underlying buffer cannot
        be released — that is fine (the mapping stays until they go), so
        ``BufferError`` is swallowed rather than crashing teardown.
        """
        for view in (self._meta_blob, self._table, self._buf):
            try:
                view.release()
            except BufferError:
                pass


# ----------------------------------------------------------------------
# lazy device
# ----------------------------------------------------------------------
class ArenaBlockDevice(BlockDevice):
    """A block device decoding pages lazily out of an :class:`ArenaView`.

    The warm-worker serving device: attach is O(1), and each page is
    decoded from its arena slice on first read, then kept in a decoded-
    page LRU of ``cache_pages`` entries (``None`` = unbounded) so
    repeated batches against the same shard hit warm Python objects.
    Clean pages can always be re-decoded, so eviction is safe; pages
    that were written to (or freshly allocated) are pinned resident.

    I/O accounting is inherited unchanged from :class:`BlockDevice` —
    a lazily-decoded read charges exactly one read, like any other, so
    per-query I/O counts match an eagerly restored device exactly.
    """

    def __init__(self, view: ArenaView,
                 cache_pages: Optional[int] = None):
        if cache_pages is not None and cache_pages < 1:
            raise ValueError("cache_pages must be >= 1 (or None)")
        super().__init__(view.block_capacity)
        self._view = view
        self._next_id = view.next_id
        self._cache_pages = cache_pages
        #: ids present in the arena and not currently materialized
        self._lazy: Set[int] = set(view._entries)
        #: clean decoded ids in recency order (eviction candidates)
        self._clean_lru: "OrderedDict[int, None]" = OrderedDict()
        #: ids whose in-memory page diverged from the arena (never evict)
        self._dirty: Set[int] = set()
        self.decodes = 0   # arena blob decodes (cold + re-decode)
        self.evictions = 0

    # -- materialization ------------------------------------------------
    def _materialize(self, page_id: int) -> Page:
        page = self._view.decode_page(page_id)
        self.decodes += 1
        self._pages[page_id] = page
        self._lazy.discard(page_id)
        self._clean_lru[page_id] = None
        self._evict_over_budget()
        return page

    def _evict_over_budget(self) -> None:
        if self._cache_pages is None:
            return
        while len(self._clean_lru) > self._cache_pages:
            victim, _ = self._clean_lru.popitem(last=False)
            del self._pages[victim]
            self._lazy.add(victim)
            self.evictions += 1

    def _touch(self, page_id: int) -> None:
        if page_id in self._clean_lru:
            self._clean_lru.move_to_end(page_id)

    # -- BlockDevice surface --------------------------------------------
    def read(self, page_id: int) -> Page:
        if page_id not in self._pages and page_id in self._lazy:
            self._materialize(page_id)
        self._touch(page_id)
        return super().read(page_id)

    def write(self, page: Page) -> None:
        super().write(page)
        self._dirty.add(page.page_id)
        self._clean_lru.pop(page.page_id, None)

    def alloc(self) -> Page:
        page = super().alloc()
        self._dirty.add(page.page_id)
        return page

    def free(self, page_id: int) -> None:
        if page_id not in self._pages and page_id in self._lazy:
            # Freeing a page nobody ever decoded: no reason to decode it
            # just to throw it away.
            self._lazy.discard(page_id)
            self.frees += 1
            return
        super().free(page_id)
        self._clean_lru.pop(page_id, None)
        self._dirty.discard(page_id)

    @property
    def pages_in_use(self) -> int:
        return len(self._pages) + len(self._lazy)

    def iter_pages(self) -> Iterator[Page]:
        """Iterate live pages (decoding lazy ones without caching them)."""
        for page in list(self._pages.values()):
            yield page
        for page_id in sorted(self._lazy):
            yield self._view.decode_page(page_id)

    @property
    def resident_pages(self) -> int:
        """Pages currently decoded (the LRU working set + dirty pins)."""
        return len(self._pages)
