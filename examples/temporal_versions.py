"""Temporal database queries over version histories.

A tuple version valid over ``[t_from, t_to]`` whose attribute drifts
linearly is a plane segment in (time, value) space — the paper lists
temporal databases among segment-database applications.  The questions
below are all vertical-segment queries:

* "which versions were valid at time t with value in [lo, hi]?"
* "which sensors read above a threshold at time t?"  (a ray query)
* "audit: everything valid at time t"                (a stabbing query)

Run:  python examples/temporal_versions.py
"""

from repro import SegmentDatabase, VerticalQuery
from repro.workloads import version_history


def main() -> None:
    n_keys, versions = 400, 25
    print(f"generating {n_keys} keys x {versions} versions...")
    history = version_history(n_keys, versions_per_key=versions, band=1000,
                              seed=7)
    print(f"  {len(history)} version segments\n")

    db = SegmentDatabase.bulk_load(history, engine="solution2",
                                   block_capacity=64)
    print(f"indexed in {db.space_in_blocks()} blocks\n")

    t = 300  # the time-travel instant

    # Key 42 lives in the value band [42_000, 43_000).
    window = VerticalQuery.segment(t, 42_000, 42_999)
    db.reset_io_stats()
    versions_at_t = db.query(window)
    print(f"key-42 versions valid at t={t}: "
          f"{sorted(s.label for s in versions_at_t)} "
          f"({db.io_stats().reads} reads)")

    # Everything reading >= 350_000 at time t (keys ~350 and up).
    high = VerticalQuery.ray_up(t, ylo=350_000)
    db.reset_io_stats()
    hot = db.query(high)
    print(f"versions with value >= 350000 at t={t}: {len(hot)} "
          f"({db.io_stats().reads} reads)")

    # Full audit at time t — and what it costs compared to the window.
    audit = VerticalQuery.line(t)
    db.reset_io_stats()
    all_valid = db.query(audit)
    print(f"all versions valid at t={t}: {len(all_valid)} "
          f"({db.io_stats().reads} reads)")

    # The paper's point, in numbers: the window query above returned
    # ~1/400th of the audit's output for a small fraction of its I/O,
    # whereas a stabbing index would pay the audit price every time.
    stab_db = SegmentDatabase.bulk_load(history, engine="stab-filter",
                                        block_capacity=64)
    stab_db.reset_io_stats()
    stab_db.query(window)
    print(f"\nsame window via stab-and-filter: "
          f"{stab_db.io_stats().reads} reads "
          f"(pays for the whole t={t} column)")


if __name__ == "__main__":
    main()
