"""An ASCII gallery of the paper's illustrative figures, rebuilt live.

Each panel constructs the configuration a figure illustrates and renders
it from the real data structures — the library's answer to the paper's
hand-drawn pictures.

Run:  python examples/figure_gallery.py
"""

from repro import Segment, SegmentDatabase, VerticalQuery
from repro.core.linebased import ExternalPST
from repro.geometry import HQuery, LineBasedSegment
from repro.iosim import BlockDevice, Pager
from repro.viz import draw_linebased, draw_scene, dump_gtree, dump_pst, dump_two_level
from repro.workloads import fan


def figure_1() -> None:
    print("=" * 74)
    print("Figure 1 — a stabbing query (full line) vs a VS query (segment)")
    print("=" * 74)
    segments = [
        Segment.from_coords(0, 8, 6, 9, label="a"),
        Segment.from_coords(1, 2, 5, 4, label="b"),
        Segment.from_coords(4, 6, 11, 5, label="c"),
        Segment.from_coords(7, 1, 12, 3, label="d"),
        Segment.from_coords(8, 7, 8, 10, label="e"),
    ]
    db = SegmentDatabase.bulk_load(segments, block_capacity=16)
    line = VerticalQuery.line(8)
    window = VerticalQuery.segment(8, 4, 8)
    print(draw_scene(segments, [window],
                     mark=[s.label for s in db.query(window)]))
    print(f"line x=8 hits     : {sorted(s.label for s in db.query(line))}")
    print(f"segment x=8,[4,8] : {sorted(s.label for s in db.query(window))} "
          f"(marked 'o' above)\n")


def figure_2_and_3() -> None:
    print("=" * 74)
    print("Figures 2–3 — line-based segments, their frame, and the PST")
    print("=" * 74)
    segments = [
        LineBasedSegment(6, 7, 6, label=1),
        LineBasedSegment(9, 11, 8, label=2),
        LineBasedSegment(0, 5, 9, label=3),
        LineBasedSegment(14, 13, 4, label=4),
        LineBasedSegment(17, 20, 7, label=5),
        LineBasedSegment(22, 21, 3, label=6),
    ]
    print(draw_linebased(segments))
    print("(base line '='; every segment has one endpoint on it)\n")
    dev = BlockDevice(block_capacity=2)
    tree = ExternalPST.build(Pager(dev), segments)
    print("The external PST over these segments (B=2, Figure 3):")
    print(dump_pst(tree))
    q = HQuery.segment(4, 4, 12)
    print(f"\nquery h=4, u in [4,12] reports: "
          f"{sorted(s.label for s in tree.query(q))}\n")


def figure_4() -> None:
    print("=" * 74)
    print("Figure 4 — Solution 1's two-level decomposition (B=2)")
    print("=" * 74)
    segments = [
        Segment.from_coords(0, 8, 3, 9, label=1),
        Segment.from_coords(1, 2, 2, 4, label=2),
        Segment.from_coords(4, 5, 9, 6, label=3),
        Segment.from_coords(5, 1, 8, 3, label=4),
        Segment.from_coords(6, 7, 6, 10, label=5),
        Segment.from_coords(10, 2, 12, 8, label=6),
        Segment.from_coords(11, 9, 12, 10, label=7),
    ]
    from repro.core.solution1 import TwoLevelBinaryIndex

    dev = BlockDevice(block_capacity=2)
    pager = Pager(dev)
    index = TwoLevelBinaryIndex.build(pager, segments, blocked=False)
    print(draw_scene(segments, [VerticalQuery.segment(6, 0, 11)]))
    print(dump_two_level(index, pager))
    print()


def figures_5_to_7() -> None:
    print("=" * 74)
    print("Figures 5–7 — Solution 2: slabs, fragment splitting, and G")
    print("=" * 74)
    import random

    rng = random.Random(5)
    segments = []
    for i in range(120):
        left = rng.randrange(0, 900)
        right = left + rng.randrange(30, 600)
        segments.append(
            Segment.from_coords(left, 10 * i, right, 10 * i + 4, label=i)
        )
    from repro.core.solution2 import TwoLevelIntervalIndex

    dev = BlockDevice(block_capacity=16)
    pager = Pager(dev)
    index = TwoLevelIntervalIndex.build(pager, segments, fanout=4)
    print(dump_two_level(index, pager, max_depth=1))
    view = index._read_view(index.root_pid)
    g = index._g_tree(view)
    if g is not None:
        print("\nThe root's segment tree G over its inner slabs (Figure 7):")
        print(dump_gtree(g))
    print()


if __name__ == "__main__":
    figure_1()
    figure_2_and_3()
    figure_4()
    figures_5_to_7()
