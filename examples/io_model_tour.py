"""A tour of the I/O cost model: counting, fitting, and the buffer pool.

The library's claims are all in the paper's I/O model; this example shows
how to measure and interpret them yourself:

1. count block reads per query with ``Measurement``,
2. sweep N and *fit* the measured costs to candidate complexity models,
3. see what an LRU buffer pool (absent from the paper's model) changes.

Run:  python examples/io_model_tour.py
"""

from repro import SegmentDatabase, VerticalQuery
from repro.analysis import best_model, render_fits, render_table
from repro.workloads import grid_segments, segment_queries

B = 32


def mean_query_reads(db, queries):
    total = output = 0
    for q in queries:
        db.reset_io_stats()
        output += len(db.query(q))
        total += db.io_stats().reads
    return total / len(queries), output / len(queries)


def main() -> None:
    # --- 1 & 2: sweep N, measure, fit ---------------------------------
    rows, measurements = [], []
    for n in (1024, 2048, 4096, 8192, 16384):
        segments = grid_segments(n, seed=1)
        db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                       block_capacity=B)
        queries = segment_queries(segments, 8,
                                  selectivity=min(0.5, 32 / n), seed=2)
        reads, out = mean_query_reads(db, queries)
        rows.append([n, round(out, 1), round(reads, 1), db.space_in_blocks()])
        measurements.append((n, B, out, reads))

    print(render_table(["N", "T (avg)", "query reads", "blocks"], rows))
    print("\nWhich complexity model explains the measurements?")
    fits = best_model(
        measurements,
        candidates=["log_B(n)", "log_B(n)*(log_B(n)+log2(B))", "n"],
    )
    print(render_fits(fits))
    lo, hi = measurements[0], measurements[-1]
    print(f"\nGrowth check: data grew x{hi[0] / lo[0]:.0f}, query reads grew "
          f"x{hi[3] / lo[3]:.2f} — the polylogarithmic shape Theorem 2 "
          f"claims (a linear scan would have grown x{hi[0] / lo[0]:.0f}).")

    # --- 3: the buffer pool -------------------------------------------
    segments = grid_segments(8192, seed=3)
    queries = segment_queries(segments, 12, selectivity=0.005, seed=4)
    cold = SegmentDatabase.bulk_load(segments, engine="solution2",
                                     block_capacity=B)
    warm = SegmentDatabase.bulk_load(segments, engine="solution2",
                                     block_capacity=B, buffer_pages=512)
    for q in queries:
        cold.query(q)
        warm.query(q)
    print(f"\n12 queries, no cache:   {cold.io_stats().reads} reads")
    print(f"12 queries, 512-page LRU: {warm.io_stats().reads} reads "
          f"(the pool absorbs the tree's upper levels)")


if __name__ == "__main__":
    main()
