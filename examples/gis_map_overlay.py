"""GIS corridor analysis over a synthetic map sheet.

The paper's headline application: GIS layers stored as collections of NCT
segments.  This example builds a Delaunay "parcel boundary" layer, then
answers planning questions of the form *"which boundaries does a proposed
north-south utility trench cross?"* — vertical segment queries — and shows
why the classical stabbing index is the wrong tool for them.

Run:  python examples/gis_map_overlay.py
"""

from repro import SegmentDatabase, VerticalQuery
from repro.workloads import delaunay_edges


def main() -> None:
    print("generating a map sheet (Delaunay parcel boundaries)...")
    boundaries = delaunay_edges(1500, extent=10**6, seed=2026)
    print(f"  {len(boundaries)} boundary segments\n")

    engines = {}
    for engine in ("solution2", "solution1", "stab-filter", "scan"):
        engines[engine] = SegmentDatabase.bulk_load(
            boundaries, engine=engine, block_capacity=64
        )
    print("blocks used:",
          {e: db.space_in_blocks() for e, db in engines.items()}, "\n")

    # A planned trench: x = 500_000, from y = 400_000 up to y = 430_000.
    trench = VerticalQuery.segment(500_000, 400_000, 430_000)
    print(f"trench {trench!r}:")
    for engine, db in engines.items():
        db.reset_io_stats()
        crossed = db.query(trench)
        print(f"  {engine:>12}: {len(crossed):3} boundaries crossed, "
              f"{db.io_stats().reads:5} block reads")

    # The same x as a full survey line (a stabbing query) — here the
    # stab-and-filter baseline is in its element:
    survey = VerticalQuery.line(500_000)
    print(f"\nfull survey line x={survey.x}:")
    for engine, db in engines.items():
        db.reset_io_stats()
        crossed = db.query(survey)
        print(f"  {engine:>12}: {len(crossed):3} boundaries crossed, "
              f"{db.io_stats().reads:5} block reads")

    # Incremental mapping: a new parcel edge arrives from the field crew.
    from repro import Segment

    new_edge = Segment.from_coords(
        -10, -10, -5, -8, label="field-edit-1"
    )  # outside the sheet: trivially NCT
    db = engines["solution2"]
    db.reset_io_stats()
    db.insert(new_edge)
    print(f"\ninserted field edit with {db.io_stats().total} I/Os; "
          f"db now holds {len(db)} segments")


if __name__ == "__main__":
    main()
