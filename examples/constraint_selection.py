"""Constraint-database selection via segment indexing.

The paper's third application domain [11]: a *constraint relation* stores
tuples intensionally, e.g. a relation ``altitude(x, h)`` given piecewise by
linear constraints ``h = a*x + b`` over intervals of ``x`` — which is
exactly a set of NCT plane segments (a piecewise-linear partial function
per object).

Selections become segment-database queries:

* ``σ[x = c]``                    — a stabbing query,
* ``σ[x = c AND h ∈ [l, u]]``     — the paper's VS query,
* ``σ[x = c AND h >= l]``         — a ray query.

Run:  python examples/constraint_selection.py
"""

from fractions import Fraction

from repro import SegmentDatabase, VerticalQuery
from repro.workloads import monotone_polylines


def main() -> None:
    # 12 terrain profiles (piecewise-linear altitude functions), each in
    # its own altitude band so the set is NCT by construction.
    profiles = monotone_polylines(12, points_per_line=60, band_height=500,
                                  step_x=80, seed=4)
    print(f"constraint relation altitude(profile, x, h): "
          f"{len(profiles)} linear pieces\n")

    db = SegmentDatabase.bulk_load(profiles, engine="solution1",
                                   block_capacity=32)

    x = 2000

    # σ[x = 2000]: the altitude of every profile at x = 2000.
    db.reset_io_stats()
    at_x = db.stab(x)
    print(f"σ[x={x}] -> {len(at_x)} pieces ({db.io_stats().reads} reads)")
    for piece in sorted(at_x, key=lambda s: s.label)[:4]:
        profile = piece.label[1]
        altitude = piece.y_at(x)
        print(f"   profile {profile}: h = {altitude} "
              f"(≈ {float(altitude):.1f})")

    # σ[x = 2000 AND h ∈ [1000, 2200]]: profiles passing through a window.
    window = VerticalQuery.segment(x, 1000, 2200)
    db.reset_io_stats()
    selected = db.query(window)
    print(f"\nσ[x={x} ∧ h∈[1000,2200]] -> profiles "
          f"{sorted({s.label[1] for s in selected})} "
          f"({db.io_stats().reads} reads)")

    # σ[x = 2000 AND h >= 4000]: the high-altitude profiles.
    high = VerticalQuery.ray_up(x, ylo=4000)
    db.reset_io_stats()
    above = db.query(high)
    print(f"σ[x={x} ∧ h>=4000]       -> profiles "
          f"{sorted({s.label[1] for s in above})} "
          f"({db.io_stats().reads} reads)")

    # Constraint joins need exact arithmetic: intersection ordinates are
    # rationals, not floats — no tolerance tuning, ever.
    piece = at_x[0]
    assert isinstance(piece.y_at(x), (int, Fraction))
    print("\nall ordinates are exact rationals — constraint algebra "
          "composes without epsilons")

    # Updating the relation: revise one piece of profile 3 (delete + insert
    # works because solution1 is fully dynamic).
    victim = next(s for s in profiles if s.label[:2] == ("p", 3))
    db.delete(victim)
    print(f"\nrevised profile 3: removed piece {victim.label}, "
          f"{len(db)} pieces remain")


if __name__ == "__main__":
    main()
