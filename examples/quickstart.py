"""Quickstart: index NCT segments, run the paper's three query kinds.

Run:  python examples/quickstart.py
"""

from repro import Segment, SegmentDatabase, VerticalQuery

# A tiny "map sheet": non-crossing, possibly touching segments.
SEGMENTS = [
    Segment.from_coords(0, 8, 3, 9, label="ridge-1"),
    Segment.from_coords(1, 2, 2, 4, label="trail-a"),
    Segment.from_coords(4, 5, 9, 6, label="river"),
    Segment.from_coords(5, 1, 8, 3, label="road-17"),
    Segment.from_coords(6, 7, 6, 10, label="wall"),       # vertical
    Segment.from_coords(8, 3, 12, 8, label="road-18"),    # touches road-17
    Segment.from_coords(11, 9, 12, 10, label="trail-b"),
]


def main() -> None:
    # bulk_load validates the NCT invariant and builds Solution 2 —
    # the paper's improved two-level structure with fractional cascading.
    db = SegmentDatabase.bulk_load(
        SEGMENTS, engine="solution2", block_capacity=16, validate=True
    )
    print(f"loaded {len(db)} segments in {db.space_in_blocks()} blocks\n")

    # 1. A stabbing query: the full vertical line x = 6.
    line = VerticalQuery.line(6)
    print("line x=6 intersects:      ",
          sorted(s.label for s in db.query(line)))

    # 2. A ray query: upward from (6, 5).
    ray = VerticalQuery.ray_up(6, ylo=5)
    print("ray up from (6,5) hits:   ",
          sorted(s.label for s in db.query(ray)))

    # 3. The paper's VS query: the vertical segment x=6, 1 <= y <= 6.
    segment = VerticalQuery.segment(6, 1, 6)
    print("segment (6,[1,6]) hits:   ",
          sorted(s.label for s in db.query(segment)))

    # Every query was answered in a few block reads:
    print("\nI/O so far:", db.io_stats())

    # Insertions keep the structure queryable (must stay NCT):
    db.insert(Segment.from_coords(0, 0, 4, 1, label="new-path"))
    print("after insert, segment (2,[0,1]) hits:",
          sorted(s.label for s in db.query(VerticalQuery.segment(2, 0, 1))))


if __name__ == "__main__":
    main()
